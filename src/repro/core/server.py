"""An asyncio TCP serving front end over :class:`~repro.core.stream.BatchSession`.

``repro-cover serve`` historically spoke newline-delimited results to a
single stdin client.  This module is the network tier on top of the
same streaming executor: many concurrent clients speak a
**newline-delimited JSON** protocol to one :class:`CoverServer`, whose
instances are micro-batched, scheduled, stolen and solved by the
session exactly as if they had arrived from one caller — bit-identical
to a solo ``run_fastpath`` per request.

Protocol (one JSON object per line, UTF-8)::

    -> {"op": "solve", "id": 7, "n": 4, "edges": [[0, 1], [2, 3]],
        "weights": [1, "3/2", 2, 1], "epsilon": "1/3",
        "deadline": 5.0, "include_dual": false}
    <- {"op": "solve", "id": 7, "ok": true, "latency_ms": 1.93,
        "result": {"cover": [...], "weight": ..., ...}}

    -> {"op": "update", "id": 8, "base": 7, "add_edges": [[0, 3]],
        "remove_edges": [1], "set_weights": [[2, "5/2"]],
        "add_vertices": [1], "threshold": 0.5}
    <- {"op": "update", "id": 8, "ok": true, "latency_ms": 0.41,
        "result": {..., "warm": true, "invalidated": 2}}

    -> {"op": "delete_edge", "id": 9, "base": 8, "position": 0}
    <- {"op": "delete_edge", "id": 9, "ok": true, ...}

    -> {"op": "cancel", "id": 7}
    <- {"op": "cancel", "id": 7, "ok": true, "cancelled": true}

    -> {"op": "stats"}
    <- {"op": "stats", "ok": true, "server": {...}, "session": {...},
        "latency": {"count": ..., "p50_ms": ..., "p95_ms": ...,
        "p99_ms": ...}, "lanes": {"int64": ..., "bigint": ...}}

Failures answer ``{"ok": false, "kind": ..., "error": ...}`` with
``kind`` one of ``bad-request`` (malformed line/instance), ``timeout``
(missed ``deadline``), ``cancelled``, ``overloaded`` (admission wait
exceeded ``shed_after``; carries ``retry_after``), ``error``
(solver-level, e.g. round limit) or ``internal``.  Solve/update
responses also carry ``retries`` — how many times the request's shard
was re-dispatched after a worker crash, hang or transport fault before
this answer was produced.  Weights and epsilon are exact: integers
pass as JSON numbers, rationals as canonical ``"num/den"`` strings.

The ``update`` verb mutates the hypergraph of an earlier ``solve`` or
``update`` on the *same connection* (``base`` is that request's id)
and re-solves incrementally
(:meth:`~repro.core.stream.BatchSession.submit_update`): edge removals
name positions in the base snapshot, additions/reweights/new vertices
follow :class:`~repro.hypergraph.GraphDelta` semantics, and the
response's ``warm``/``invalidated`` fields report whether the cached
per-component state was reused.  ``delete_edge`` is the single-removal
shorthand.  Results are bit-identical to solving the mutated
hypergraph from scratch.

Design notes
------------

* **admission is bounded and fair** — at most ``max_pending`` requests
  may be past-parse but not-yet-responded, enforced with a semaphore
  the connection handlers acquire *before* reading further lines.  A
  client bursting past the bound simply stops being read (TCP
  backpressure); a **slow-reading** client holds only its own slots,
  so it can never stall the scheduler or other clients.  A second,
  **per-client** quota (``per_client_pending``) is acquired *before*
  the global semaphore, so one greedy pipeliner blocks on its own
  quota while global slots stay free for everybody else — a two-client
  starvation test pins this;
* **a dispatcher thread owns admission into the session** —
  ``session.submit`` seals and packs CSR arenas under the session
  lock, so it must never run on the event loop; the loop hands parsed
  requests (and cancels, which must order after their submits) to the
  dispatcher over a queue and stays free to settle responses.
  Completion flows back via
  :meth:`~repro.core.stream.StreamTicket.add_done_callback` →
  ``loop.call_soon_threadsafe``;
* **per-request control** — every solve is one
  :class:`~repro.core.stream.StreamTicket`: the ``cancel`` verb
  withdraws it (unsolved when still buffered/queued), a ``deadline``
  arms the session's watchdog, and a connection reset (or write
  failure) auto-cancels everything the client still has in flight.  A
  *clean* EOF is not a reset: a client may pipeline its solves, close
  its write side, and still read every response before the server
  closes the socket;
* **graceful drain** — :meth:`CoverServer.shutdown` stops accepting,
  waits for every admitted request to settle and flush, then closes
  the session (which drains the worker pool) — no request that got a
  ticket is ever dropped without an answer its client could have read.

All server-side mutable state (counters, latency window, connection
registry) is touched only on the event loop thread; the dispatcher
thread touches only the session.  :class:`CoverClient` is the matching
asyncio client used by the tests, the load harness
(``benchmarks/bench_serve.py``) and ``examples/tcp_client.py``.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import math
import queue
import socket
import sys
import threading
import time
from collections import Counter, deque
from fractions import Fraction

from repro.core.faults import FaultPlan
from repro.core.params import AlgorithmConfig
from repro.core.stream import BatchSession
from repro.core.supervisor import SupervisorPolicy
from repro.exceptions import (
    InvalidInstanceError,
    ReproError,
    TicketCancelled,
    TicketTimeout,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.mutable import GraphDelta

__all__ = [
    "CoverServer",
    "CoverClient",
    "ServerError",
    "instance_payload",
    "parse_instance",
]

#: Per-line size cap for the stream reader.  Instances travel inline,
#: so the limit is generous; a line beyond it is a protocol error.
MAX_LINE_BYTES = 32 * 1024 * 1024

#: Upper bound on a single response write stalling in ``drain()``.  A
#: peer making no TCP progress for this long is treated as gone: the
#: connection is aborted so its queued payloads are discarded and
#: their admission slots released.  A merely *slow* reader never trips
#: this — each ``drain()`` completes as soon as the socket buffer
#: falls below the high-water mark — but without it a half-closed
#: client that stops reading would pin its flush (and shutdown's
#: drain) forever.
WRITE_STALL_TIMEOUT = 60.0

#: Sentinel closing a connection's writer queue.
_CLOSE = object()


class ServerError(ReproError):
    """A request failed server-side (carried back to the client)."""

    def __init__(self, message: str, kind: str = "error"):
        super().__init__(message)
        self.kind = kind


def _reject_nonfinite(token: str):
    """``json.loads`` hook: the protocol has no use for non-finite
    numbers, and letting ``NaN`` through breaks every comparison
    downstream (``NaN <= 0`` is False, so it would pass validation)."""
    raise ValueError(f"non-finite number {token!r}")


#: Digit ceiling the wire layer raises CPython's int<->str guard to.
#: A decimal token can never be longer than the line carrying it, so
#: :data:`MAX_LINE_BYTES` digits is the natural bound.
_DIGIT_LIMIT = MAX_LINE_BYTES


def _lift_decimal_guard() -> None:
    """Raise CPython's int<->str digit cap to the protocol's line bound.

    The protocol carries weights and duals as canonical decimal
    ``"num/den"`` tokens, and spill-lane instances routinely hold
    weights tens of thousands of bits wide — far past the default
    4300-digit conversion guard.  That guard protects parsers fed
    unbounded untrusted decimals; here every line is already capped at
    :data:`MAX_LINE_BYTES`, so conversions are raised to that bound —
    never unlimited, so an application embedding :class:`CoverClient`
    keeps a finite interpreter-wide guard.

    .. note:: ``sys.set_int_max_str_digits`` is process-global; this
       only ever *raises* the limit (to :data:`_DIGIT_LIMIT`), and
       leaves any equal-or-wider — or already unlimited — setting
       untouched.
    """
    current = sys.get_int_max_str_digits()
    if current != 0 and current < _DIGIT_LIMIT:
        sys.set_int_max_str_digits(_DIGIT_LIMIT)


def _weight_for_json(weight) -> int | str:
    if isinstance(weight, int):
        return weight
    weight = Fraction(weight)
    if weight.denominator == 1:
        return weight.numerator
    return str(weight)


def instance_payload(hypergraph: Hypergraph) -> dict:
    """The wire form of one instance (the ``solve`` verb's body).

    Exact inverse of :func:`parse_instance`: integer weights as JSON
    numbers, fractional weights as ``"num/den"`` strings, the all-ones
    default omitted.
    """
    _lift_decimal_guard()
    payload: dict = {
        "n": hypergraph.num_vertices,
        "edges": [list(edge) for edge in hypergraph.edges],
    }
    if any(weight != 1 for weight in hypergraph.weights):
        payload["weights"] = [
            _weight_for_json(weight) for weight in hypergraph.weights
        ]
    return payload


def _parse_weight(token, position: int):
    if isinstance(token, bool) or not isinstance(token, (int, str)):
        raise InvalidInstanceError(
            f"weights[{position}]: expected an integer or a 'num/den' "
            f"string, got {token!r}"
        )
    if isinstance(token, int):
        return token
    try:
        return Fraction(token)
    except (ValueError, ZeroDivisionError) as error:
        raise InvalidInstanceError(
            f"weights[{position}]: malformed rational {token!r}"
        ) from error


def parse_instance(message: dict) -> Hypergraph:
    """Build the :class:`Hypergraph` a ``solve`` request describes.

    Structural validation (vertex ranges, positive weights, ...) is the
    :class:`Hypergraph` constructor's job; this only checks the wire
    shapes so errors read as protocol errors.
    """
    _lift_decimal_guard()
    n = message.get("n")
    if isinstance(n, bool) or not isinstance(n, int) or n < 0:
        raise InvalidInstanceError(
            f"'n' must be a non-negative integer, got {n!r}"
        )
    edges_field = message.get("edges", [])
    if not isinstance(edges_field, list):
        raise InvalidInstanceError("'edges' must be a list of vertex lists")
    edges = []
    for index, edge in enumerate(edges_field):
        if not isinstance(edge, list) or not all(
            isinstance(vertex, int) and not isinstance(vertex, bool)
            for vertex in edge
        ):
            raise InvalidInstanceError(
                f"edges[{index}]: expected a list of integer vertex ids, "
                f"got {edge!r}"
            )
        edges.append(tuple(edge))
    weights_field = message.get("weights")
    weights = None
    if weights_field is not None:
        if not isinstance(weights_field, list):
            raise InvalidInstanceError(
                "'weights' must be a list of integers or 'num/den' strings"
            )
        weights = [
            _parse_weight(token, position)
            for position, token in enumerate(weights_field)
        ]
    return Hypergraph(n, edges, weights)


def _percentile(sorted_values: list[float], quantile: float) -> float:
    """Nearest-rank percentile of an ascending non-empty list."""
    rank = max(
        0, min(len(sorted_values) - 1,
               round(quantile * (len(sorted_values) - 1)))
    )
    return sorted_values[rank]


class _SolveRequest:
    """One in-flight ``solve`` or ``update``: payload plus routing state.

    Updates carry no hypergraph of their own; instead ``base`` points
    at the request whose (possibly mutated) snapshot the ``delta``
    applies to, and the dispatcher chains the session tickets.
    """

    __slots__ = ("connection", "request_id", "hypergraph", "config",
                 "deadline", "include_dual", "started", "ticket",
                 "op", "base", "delta", "threshold")

    def __init__(self, connection, request_id, hypergraph, config,
                 deadline, include_dual, *, op="solve", base=None,
                 delta=None, threshold=0.5):
        self.connection = connection
        self.request_id = request_id
        self.hypergraph = hypergraph
        self.config = config
        self.deadline = deadline
        self.include_dual = include_dual
        self.started = time.perf_counter()
        self.ticket = None  # set by the dispatcher thread
        self.op = op
        self.base = base
        self.delta = delta
        self.threshold = threshold


class _Connection:
    """Loop-side state of one client connection."""

    __slots__ = ("writer", "responses", "requests", "handles", "slots",
                 "outstanding", "alive", "drained")

    def __init__(self, writer, per_client_pending: int):
        self.writer = writer
        #: Response queue consumed by the connection's writer task:
        #: ``(payload, holds_slot)`` tuples, or ``_CLOSE``.
        self.responses: asyncio.Queue = asyncio.Queue()
        #: Live solve requests by client request id (for ``cancel``).
        self.requests: dict = {}
        #: Every solve/update this connection ever admitted, by id —
        #: the ``base`` namespace of the ``update`` verb.  Entries stay
        #: resident (any answered request may become an update base).
        self.handles: dict = {}
        #: Per-client admission quota, acquired before the server-wide
        #: semaphore so a greedy pipeliner starves only itself.
        self.slots = asyncio.Semaphore(per_client_pending)
        self.outstanding = 0
        self.alive = True
        #: Set when the last outstanding request has settled.
        self.drained = asyncio.Event()
        self.drained.set()


class CoverServer:
    """The TCP serving front end; see the module docstring.

    Parameters
    ----------
    host / port:
        Bind address; port ``0`` picks a free port (reported by
        :meth:`start`).
    config:
        Default :class:`AlgorithmConfig` for requests that do not
        override ``epsilon``/``schedule``.
    jobs / max_batch / verify:
        Passed through to the underlying :class:`BatchSession`.
    max_pending:
        Admission bound: requests admitted (parsed) but not yet
        responded, across all clients.  Beyond it, connection handlers
        stop reading — TCP backpressure, never a stalled scheduler.
    per_client_pending:
        Fairness quota: how many of those slots a single connection
        may hold at once (default ``max(1, max_pending // 4)``).
        Acquired before the global semaphore, so a client bursting
        past its quota blocks on itself while global capacity stays
        available to other clients.
    latency_window:
        How many recent request latencies the ``stats`` verb's
        percentiles are computed over.
    shed_after:
        Load-shedding bound, in seconds.  A request whose *admission
        wait* (time blocked on the per-client or global semaphore)
        exceeds it is answered ``{"ok": false, "kind": "overloaded",
        "retry_after": shed_after}`` instead of queueing unboundedly —
        an explicit backpressure signal the client can act on.
        ``None`` (the default) keeps pure TCP backpressure.
    fault_plan:
        Optional :class:`~repro.core.faults.FaultPlan` passed to the
        session (worker/ship faults) and consulted by the response
        writer for server-side faults: ``drop`` discards one response
        (slots still released — the client sees a missing answer, the
        server stays healthy), ``reset`` aborts the connection.
    policy:
        Optional :class:`~repro.core.supervisor.SupervisorPolicy` for
        the session's supervisor/breaker.
    max_resident:
        Bound on resident incremental solve states kept for the
        ``update`` verb; least-recently-based states beyond it are
        evicted (re-solving cold on next use).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        config: AlgorithmConfig | None = None,
        jobs: int | None = None,
        max_batch: int = 8,
        verify: bool = True,
        max_pending: int = 256,
        per_client_pending: int | None = None,
        latency_window: int = 4096,
        shed_after: float | None = None,
        fault_plan: FaultPlan | None = None,
        policy: SupervisorPolicy | None = None,
        max_resident: int | None = None,
    ):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if shed_after is not None and (
            not math.isfinite(shed_after) or shed_after <= 0
        ):
            raise ValueError(
                f"shed_after must be a positive finite number of seconds, "
                f"got {shed_after!r}"
            )
        if per_client_pending is None:
            per_client_pending = max(1, max_pending // 4)
        if per_client_pending < 1:
            raise ValueError(
                f"per_client_pending must be >= 1, got {per_client_pending}"
            )
        self._host = host
        self._port = port
        self._config = config or AlgorithmConfig()
        self._jobs = jobs
        self._max_batch = max_batch
        self._verify = verify
        self._max_pending = max_pending
        self._per_client_pending = per_client_pending
        self._shed_after = shed_after
        self._fault_plan = fault_plan
        self._policy = policy
        self._max_resident = max_resident
        self._session: BatchSession | None = None
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._dispatch_queue: queue.Queue = queue.Queue()
        self._dispatcher: threading.Thread | None = None
        self._slots: asyncio.Semaphore | None = None
        self._connections: set[_Connection] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._closing = False
        self._latencies: deque[float] = deque(maxlen=latency_window)
        self._lane_counts: Counter = Counter()
        self._counters = Counter(
            requests=0, responses=0, errors=0, disconnect_cancels=0,
            updates=0, warm_updates=0, shed=0, injected_drops=0,
            injected_resets=0,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind, start serving, and return the actual ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("server already started")
        _lift_decimal_guard()
        self._loop = asyncio.get_running_loop()
        self._session = BatchSession(
            self._config,
            jobs=self._jobs,
            verify=self._verify,
            max_batch=self._max_batch,
            fault_plan=self._fault_plan,
            policy=self._policy,
            max_resident=self._max_resident,
            # A server runs indefinitely: the admission log must not
            # grow without bound.
            record_schedule=False,
        )
        self._slots = asyncio.Semaphore(self._max_pending)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name="cover-serve-dispatch",
            daemon=True,
        )
        self._dispatcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=MAX_LINE_BYTES,
        )
        address = self._server.sockets[0].getsockname()
        return address[0], address[1]

    async def serve_forever(self) -> None:
        """Serve until cancelled (``start`` must have been awaited)."""
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Graceful drain: answer everything admitted, then close.

        Stops accepting new connections, waits for every outstanding
        request to settle and its response to flush (disconnected
        clients' responses are discarded), cancels the idle reader
        tasks, stops the dispatcher and closes the session — which
        itself drains the worker pool.  Idempotent.
        """
        if self._server is None:
            return
        self._closing = True
        self._server.close()
        await self._server.wait_closed()
        # Every admitted request must settle and flush before the
        # session goes away; connections signal via their drain events.
        for connection in list(self._connections):
            await connection.drained.wait()
        # Readers are now idle (or mid-read on a live client): stop
        # them and flush each connection's writer.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._dispatch_queue.put(None)
        dispatcher, session = self._dispatcher, self._session
        loop = asyncio.get_running_loop()
        if dispatcher is not None:
            await loop.run_in_executor(None, dispatcher.join)
        if session is not None:
            await loop.run_in_executor(None, session.close)

    @property
    def session(self) -> BatchSession | None:
        """The underlying session (``None`` before :meth:`start`)."""
        return self._session

    # ------------------------------------------------------------------
    # Dispatcher thread: the only caller of session.submit
    # ------------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        """Consume admission work; runs until the shutdown sentinel.

        Ordering matters and is the reason cancels travel through this
        queue too: a ``cancel`` enqueued after its ``solve`` can never
        overtake it, so the ticket always exists by the time the
        cancel runs.
        """
        while True:
            item = self._dispatch_queue.get()
            if item is None:
                return
            verb, payload = item
            if verb == "solve":
                self._dispatch_solve(payload)
            elif verb == "update":
                self._dispatch_update(payload)
            elif verb == "cancel":
                request, respond = payload
                cancelled = (
                    request.ticket is not None and request.ticket.cancel()
                )
                self._loop.call_soon_threadsafe(respond, cancelled)
            elif verb == "stats":
                # snapshot() takes the session lock, which this thread
                # may hold for a long pack_arena during submit — so it
                # runs here, where it merely queues behind that work,
                # never on the event loop, which it would stall.
                snapshot = self._session.snapshot()
                self._loop.call_soon_threadsafe(payload, snapshot)
            elif verb == "abort":
                # A connection died: withdraw everything it still has
                # in flight (the settles flow back normally and are
                # discarded loop-side).
                for request in payload:
                    if request.ticket is not None:
                        request.ticket.cancel()

    def _dispatch_solve(self, request: _SolveRequest) -> None:
        try:
            ticket = self._session.submit(
                request.hypergraph,
                config=request.config,
                deadline=request.deadline,
            )
        except BaseException as error:  # closed session, bad deadline
            self._loop.call_soon_threadsafe(
                self._settled, request, None, error
            )
            return
        request.ticket = ticket
        ticket.add_done_callback(
            lambda ticket, request=request:
            self._loop.call_soon_threadsafe(
                self._settled, request, ticket._result, ticket._error
            )
        )

    def _dispatch_update(self, request: _SolveRequest) -> None:
        """Chain an update onto its base request's session ticket.

        The base's ``solve``/``update`` travelled through this same
        FIFO queue earlier, so its ticket exists by now — unless its
        own admission failed, which the update inherits as an error.
        """
        try:
            base_ticket = request.base.ticket
            if base_ticket is None:
                raise ServerError(
                    f"base request {request.base.request_id!r} was never "
                    f"admitted",
                    "bad-request",
                )
            ticket = self._session.submit_update(
                base_ticket,
                request.delta,
                deadline=request.deadline,
                threshold=request.threshold,
            )
        except BaseException as error:
            self._loop.call_soon_threadsafe(
                self._settled, request, None, error
            )
            return
        request.ticket = ticket
        ticket.add_done_callback(
            lambda ticket, request=request:
            self._loop.call_soon_threadsafe(
                self._settled, request, ticket._result, ticket._error
            )
        )

    # ------------------------------------------------------------------
    # Connection handling (event loop)
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        connection = _Connection(writer, self._per_client_pending)
        self._connections.add(connection)
        self._conn_tasks.add(asyncio.current_task())
        writer_task = asyncio.create_task(self._write_responses(connection))
        # A clean close (EOF, oversized line, shutdown) stops *reading*
        # but still answers everything admitted: a client that
        # pipelines its solves and half-closes its write side — the
        # common NDJSON pattern — reads every response.  Only a reset
        # or write failure aborts, withdrawing in-flight work.
        clean_close = False
        try:
            while not self._closing:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self._respond_error(
                        connection, None, None,
                        f"line exceeds {MAX_LINE_BYTES} bytes",
                        "bad-request",
                    )
                    clean_close = True  # reads are poisoned, writes fine
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    clean_close = True  # EOF: client done sending
                    break
                text = line.strip()
                if not text:
                    continue
                await self._handle_line(connection, text)
            else:
                clean_close = True
        except asyncio.CancelledError:
            # Shutdown cancels idle readers — after the drain, so
            # nothing is left to abort and responses have flushed.
            clean_close = True
        finally:
            if not clean_close:
                self._abort_connection(connection)
            # Teardown must run to completion even if a shutdown-time
            # cancel lands on one of its awaits (by then the server has
            # already drained, so the waits return immediately anyway).
            try:
                await connection.drained.wait()
            except asyncio.CancelledError:
                pass
            connection.responses.put_nowait(_CLOSE)
            try:
                await writer_task
            except asyncio.CancelledError:
                pass
            # The persistent worker pool forks with whatever FDs are
            # open, so a worker spawned mid-connection holds a copy of
            # this socket and transport close alone would never send
            # the FIN a half-closed client is waiting on.  shutdown()
            # acts on the TCP connection itself, not the FD count.
            raw_socket = writer.get_extra_info("socket")
            if raw_socket is not None:
                try:
                    raw_socket.shutdown(socket.SHUT_WR)
                except OSError:
                    pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass
            self._connections.discard(connection)
            self._conn_tasks.discard(asyncio.current_task())

    def _abort_connection(self, connection: _Connection) -> None:
        """Flip the connection dead and withdraw its in-flight solves.

        Reserved for resets and write failures — a clean EOF keeps the
        connection alive for writes instead.  Idempotent: the writer
        task and the reader's teardown may both get here.
        """
        if not connection.alive:
            return
        connection.alive = False
        live = [
            request
            for request in connection.requests.values()
            if request.ticket is None or not request.ticket.done()
        ]
        if live:
            self._counters["disconnect_cancels"] += len(live)
            self._dispatch_queue.put(("abort", live))

    async def _handle_line(self, connection: _Connection, text: bytes) -> None:
        try:
            message = json.loads(text, parse_constant=_reject_nonfinite)
            if not isinstance(message, dict):
                raise ValueError("expected a JSON object")
        except (ValueError, UnicodeDecodeError) as error:
            self._respond_error(
                connection, None, None, f"malformed JSON line: {error}",
                "bad-request",
            )
            return
        op = message.get("op")
        request_id = message.get("id")
        self._counters["requests"] += 1
        if request_id is not None and not isinstance(request_id, (str, int)):
            # `id` keys the response-matching and cancel registries:
            # anything but a string/int/null (a list is valid JSON but
            # unhashable) would raise only *after* the admission slot
            # was taken, leaking it.  Refuse before dispatching on op.
            self._respond_error(
                connection,
                op if isinstance(op, str) else None,
                None,
                f"'id' must be a string, integer or null, "
                f"got {request_id!r}",
                "bad-request",
            )
            return
        if op == "solve":
            await self._handle_solve(connection, request_id, message)
        elif op in ("update", "delete_edge"):
            await self._handle_update(connection, request_id, message, op)
        elif op == "cancel":
            self._handle_cancel(connection, request_id)
        elif op == "stats":
            self._handle_stats(connection, request_id)
        elif op == "ping":
            self._respond(
                connection,
                {"op": "ping", "id": request_id, "ok": True},
                holds_slot=False,
            )
        else:
            self._respond_error(
                connection, op, request_id, f"unknown op {op!r}",
                "bad-request",
            )

    @staticmethod
    def _parse_deadline(message) -> float | None:
        deadline = message.get("deadline")
        if deadline is not None and (
            isinstance(deadline, bool)
            or not isinstance(deadline, (int, float))
            # isfinite kills 1e400-style overflows-to-inf; literal
            # NaN/Infinity tokens were already refused at parse.
            or not math.isfinite(deadline)
            or deadline <= 0
        ):
            raise InvalidInstanceError(
                f"'deadline' must be a positive finite number of "
                f"seconds, got {deadline!r}"
            )
        return float(deadline) if deadline is not None else None

    async def _admit_request(self, connection, request, verb) -> None:
        """Take the admission slots and hand the request to dispatch.

        The per-client quota comes first: a client past its fair share
        blocks here — before its next line is read — without consuming
        server-wide capacity.  Both slots are returned together when
        the response has been written (or its client is gone).

        With ``shed_after`` set, a request that cannot take both slots
        within that bound is *shed*: answered ``overloaded`` with a
        ``retry_after`` hint instead of queueing indefinitely.  The
        reader keeps going, so an overloaded server stays responsive —
        it just says no quickly.
        """
        if self._shed_after is not None:
            try:
                await asyncio.wait_for(
                    connection.slots.acquire(), self._shed_after
                )
            except asyncio.TimeoutError:
                self._shed(connection, request)
                return
            try:
                await asyncio.wait_for(
                    self._slots.acquire(), self._shed_after
                )
            except asyncio.TimeoutError:
                connection.slots.release()
                self._shed(connection, request)
                return
        else:
            await connection.slots.acquire()
            await self._slots.acquire()
        connection.requests[request.request_id] = request
        connection.handles[request.request_id] = request
        connection.outstanding += 1
        connection.drained.clear()
        self._dispatch_queue.put((verb, request))

    def _shed(self, connection, request: _SolveRequest) -> None:
        """Answer ``overloaded`` for a request the server cannot admit."""
        self._counters["shed"] += 1
        payload = self._error_payload(
            request.op,
            request.request_id,
            ServerError(
                f"admission wait exceeded {self._shed_after}s; "
                f"retry after backoff",
                "overloaded",
            ),
        )
        payload["retry_after"] = self._shed_after
        self._respond(connection, payload, holds_slot=False)

    async def _handle_solve(self, connection, request_id, message) -> None:
        try:
            hypergraph = parse_instance(message)
            config = self._request_config(message)
            deadline = self._parse_deadline(message)
            include_dual = bool(message.get("include_dual", False))
        except ReproError as error:
            self._respond_error(
                connection, "solve", request_id, str(error), "bad-request"
            )
            return
        request = _SolveRequest(
            connection, request_id, hypergraph, config, deadline,
            include_dual,
        )
        await self._admit_request(connection, request, "solve")

    async def _handle_update(
        self, connection, request_id, message, op
    ) -> None:
        try:
            base = connection.handles.get(message.get("base"))
            if base is None:
                raise InvalidInstanceError(
                    f"'base' must name an earlier solve/update request "
                    f"on this connection, got {message.get('base')!r}"
                )
            delta = self._parse_delta(message, op)
            deadline = self._parse_deadline(message)
            include_dual = bool(message.get("include_dual", False))
            threshold = message.get("threshold", 0.5)
            if (
                isinstance(threshold, bool)
                or not isinstance(threshold, (int, float))
                or not math.isfinite(threshold)
                or threshold < 0
            ):
                raise InvalidInstanceError(
                    f"'threshold' must be a non-negative finite number, "
                    f"got {threshold!r}"
                )
        except ReproError as error:
            self._respond_error(
                connection, op, request_id, str(error), "bad-request"
            )
            return
        request = _SolveRequest(
            connection, request_id, None, base.config, deadline,
            include_dual, op=op, base=base, delta=delta,
            threshold=float(threshold),
        )
        await self._admit_request(connection, request, "update")

    @staticmethod
    def _parse_delta(message, op) -> GraphDelta:
        """The :class:`~repro.hypergraph.GraphDelta` a verb describes.

        Wire-shape checks only (like :func:`parse_instance`); semantic
        validation against the base snapshot — positions in range,
        weights positive — happens when the delta is applied, and
        surfaces as a solver-level error.
        """
        if op == "delete_edge":
            position = message.get("position")
            if isinstance(position, bool) or not isinstance(position, int):
                raise InvalidInstanceError(
                    f"'position' must be an integer edge position, "
                    f"got {position!r}"
                )
            return GraphDelta(removed_edges=(position,))
        added_edges = message.get("add_edges", [])
        removed_edges = message.get("remove_edges", [])
        set_weights = message.get("set_weights", [])
        added_vertices = message.get("add_vertices", [])
        if not isinstance(added_edges, list) or not all(
            isinstance(edge, list)
            and all(
                isinstance(vertex, int) and not isinstance(vertex, bool)
                for vertex in edge
            )
            for edge in added_edges
        ):
            raise InvalidInstanceError(
                "'add_edges' must be a list of integer vertex lists"
            )
        if not isinstance(removed_edges, list) or not all(
            isinstance(position, int) and not isinstance(position, bool)
            for position in removed_edges
        ):
            raise InvalidInstanceError(
                "'remove_edges' must be a list of integer edge positions "
                "in the base snapshot"
            )
        if not isinstance(set_weights, list) or not all(
            isinstance(pair, list) and len(pair) == 2
            and isinstance(pair[0], int) and not isinstance(pair[0], bool)
            for pair in set_weights
        ):
            raise InvalidInstanceError(
                "'set_weights' must be a list of [vertex, weight] pairs"
            )
        if not isinstance(added_vertices, list):
            raise InvalidInstanceError(
                "'add_vertices' must be a list of new-vertex weights"
            )
        return GraphDelta(
            added_vertices=tuple(
                _parse_weight(token, position)
                for position, token in enumerate(added_vertices)
            ),
            added_edges=tuple(tuple(edge) for edge in added_edges),
            removed_edges=tuple(removed_edges),
            reweighted=tuple(
                (pair[0], _parse_weight(pair[1], position))
                for position, pair in enumerate(set_weights)
            ),
        )

    def _request_config(self, message) -> AlgorithmConfig:
        epsilon = message.get("epsilon")
        schedule = message.get("schedule")
        if epsilon is None and schedule is None:
            return self._config
        try:
            return AlgorithmConfig(
                epsilon=(
                    epsilon if epsilon is not None else self._config.epsilon
                ),
                schedule=(
                    schedule if schedule is not None
                    else self._config.schedule
                ),
            )
        except (TypeError, ValueError) as error:
            raise InvalidInstanceError(
                f"bad solve parameters: {error}"
            ) from error

    def _handle_cancel(self, connection, request_id) -> None:
        request = connection.requests.get(request_id)
        if request is None:
            self._respond(
                connection,
                {
                    "op": "cancel", "id": request_id, "ok": True,
                    "cancelled": False,
                },
                holds_slot=False,
            )
            return

        def respond(cancelled: bool) -> None:
            self._respond(
                connection,
                {
                    "op": "cancel", "id": request_id, "ok": True,
                    "cancelled": cancelled,
                },
                holds_slot=False,
            )

        # Routed through the dispatcher so it orders after the submit.
        self._dispatch_queue.put(("cancel", (request, respond)))

    # ------------------------------------------------------------------
    # Settling and responses (event loop)
    # ------------------------------------------------------------------

    def _settled(self, request: _SolveRequest, result, error) -> None:
        """A ticket resolved: build and enqueue the response."""
        latency = time.perf_counter() - request.started
        connection = request.connection
        if connection.requests.get(request.request_id) is request:
            del connection.requests[request.request_id]
        retries = request.ticket.retries if request.ticket is not None else 0
        if error is None:
            self._latencies.append(latency)
            if result.lane is not None:
                self._lane_counts[result.lane] += 1
            payload = {
                "op": request.op,
                "id": request.request_id,
                "ok": True,
                "latency_ms": round(latency * 1e3, 3),
                "retries": retries,
                "result": result.as_dict(include_dual=request.include_dual),
            }
        else:
            payload = self._error_payload(
                request.op, request.request_id, error
            )
            payload["latency_ms"] = round(latency * 1e3, 3)
            payload["retries"] = retries
        self._respond(connection, payload, holds_slot=True)
        connection.outstanding -= 1
        if connection.outstanding == 0:
            connection.drained.set()
        if request.op != "solve" and error is None:
            self._counters["updates"] += 1
            if result.warm:
                self._counters["warm_updates"] += 1

    def _error_payload(self, op, request_id, error) -> dict:
        self._counters["errors"] += 1
        if isinstance(error, TicketTimeout):
            kind = "timeout"
        elif isinstance(error, TicketCancelled):
            kind = "cancelled"
        elif isinstance(error, ServerError):
            kind = error.kind
        elif isinstance(error, ReproError):
            kind = "error"
        else:
            kind = "internal"
        return {
            "op": op,
            "id": request_id,
            "ok": False,
            "kind": kind,
            "error": f"{type(error).__name__}: {error}",
        }

    def _respond_error(self, connection, op, request_id, message, kind) -> None:
        self._respond(
            connection,
            self._error_payload(op, request_id, ServerError(message, kind)),
            holds_slot=False,
        )

    def _respond(self, connection, payload, *, holds_slot: bool) -> None:
        connection.responses.put_nowait((payload, holds_slot))

    async def _write_responses(self, connection: _Connection) -> None:
        """Per-connection writer: the only task touching the socket.

        A slow client blocks only here, in ``drain()`` — holding its
        own admission slots and nothing else.  A write failure — or a
        single write stalled past :data:`WRITE_STALL_TIMEOUT` — aborts
        the connection (its remaining in-flight solves are withdrawn)
        but keeps consuming so every held slot is released.

        This is also the server-side fault-injection site: with a
        :class:`FaultPlan` armed, ``drop`` discards one *solve*
        response (slots still released, so the server never wedges on
        its own fault) and ``reset`` aborts the connection mid-stream
        — both exactly the failure a flaky network would produce.
        """
        while True:
            item = await connection.responses.get()
            if item is _CLOSE:
                return
            payload, holds_slot = item
            if (
                holds_slot
                and connection.alive
                and self._fault_plan is not None
            ):
                fault = self._fault_plan.server_fault()
                if fault == "drop":
                    self._counters["injected_drops"] += 1
                    self._slots.release()
                    connection.slots.release()
                    continue
                if fault == "reset":
                    self._counters["injected_resets"] += 1
                    self._abort_connection(connection)
                    transport = connection.writer.transport
                    if transport is not None:
                        transport.abort()
            if connection.alive:
                try:
                    connection.writer.write(
                        json.dumps(payload).encode("utf-8") + b"\n"
                    )
                    await asyncio.wait_for(
                        connection.writer.drain(), WRITE_STALL_TIMEOUT
                    )
                    self._counters["responses"] += 1
                except (ConnectionError, OSError, asyncio.TimeoutError):
                    self._abort_connection(connection)
            if holds_slot:
                self._slots.release()
                connection.slots.release()

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    def _handle_stats(self, connection: _Connection, request_id) -> None:
        """Answer a ``stats`` request (session snapshot off-loop)."""

        def respond(session_stats: dict) -> None:
            self._respond(
                connection,
                self._stats_payload(request_id, session_stats),
                holds_slot=False,
            )

        self._dispatch_queue.put(("stats", respond))

    def _stats_payload(self, request_id, session_stats: dict) -> dict:
        ordered = sorted(self._latencies)
        latency = {"count": len(ordered)}
        if ordered:
            latency.update(
                p50_ms=round(_percentile(ordered, 0.50) * 1e3, 3),
                p95_ms=round(_percentile(ordered, 0.95) * 1e3, 3),
                p99_ms=round(_percentile(ordered, 0.99) * 1e3, 3),
                mean_ms=round(sum(ordered) / len(ordered) * 1e3, 3),
            )
        return {
            "op": "stats",
            "id": request_id,
            "ok": True,
            "server": {
                **dict(self._counters),
                "active_connections": len(self._connections),
                "max_pending": self._max_pending,
                "per_client_pending": self._per_client_pending,
            },
            "session": session_stats,
            "latency": latency,
            "lanes": dict(self._lane_counts),
        }


class CoverClient:
    """Asyncio client for the newline-delimited JSON protocol.

    Supports pipelining: many :meth:`solve` coroutines may be in
    flight on one connection (responses are matched by ``(op, id)``,
    since completion order is not submission order).
    """

    def __init__(self, reader, writer):
        self._reader = reader
        self._writer = writer
        self._pending: dict[tuple, asyncio.Future] = {}
        self._ids = itertools.count()
        self._reader_task = asyncio.create_task(self._read_responses())

    @classmethod
    async def connect(cls, host: str, port: int) -> "CoverClient":
        _lift_decimal_guard()
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES
        )
        return cls(reader, writer)

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def _read_responses(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                message = json.loads(line)
                key = (message.get("op"), message.get("id"))
                future = self._pending.pop(key, None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (ConnectionError, OSError, ValueError):
            pass
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError("server connection closed")
                    )
            self._pending.clear()

    @staticmethod
    def encode(message: dict) -> tuple[tuple, bytes]:
        """Pre-encode a request into its ``(key, line)`` wire form.

        Load generators build their corpus outside the timed region;
        :meth:`request_encoded` sends the prepared line without paying
        serialization per request.
        """
        return (
            (message.get("op"), message.get("id")),
            json.dumps(message).encode("utf-8") + b"\n",
        )

    async def request_encoded(self, key: tuple, line: bytes) -> dict:
        """Send one pre-encoded request line; awaits its response."""
        if key in self._pending:
            raise ValueError(f"request {key} already in flight")
        future = asyncio.get_running_loop().create_future()
        self._pending[key] = future
        self._writer.write(line)
        await self._writer.drain()
        return await future

    async def request(self, message: dict) -> dict:
        """Send one request object and await its matched response."""
        key, line = self.encode(message)
        return await self.request_encoded(key, line)

    async def solve(
        self,
        hypergraph: Hypergraph,
        *,
        epsilon=None,
        schedule: str | None = None,
        deadline: float | None = None,
        include_dual: bool = False,
        request_id=None,
    ) -> dict:
        """Solve one instance; returns the raw response object."""
        message = {
            "op": "solve",
            "id": request_id if request_id is not None
            else f"c{next(self._ids)}",
            **instance_payload(hypergraph),
        }
        if epsilon is not None:
            message["epsilon"] = (
                epsilon if isinstance(epsilon, (int, str))
                else str(Fraction(epsilon))
            )
        if schedule is not None:
            message["schedule"] = schedule
        if deadline is not None:
            message["deadline"] = deadline
        if include_dual:
            message["include_dual"] = True
        return await self.request(message)

    async def update(
        self,
        base,
        *,
        add_edges=(),
        remove_edges=(),
        set_weights=(),
        add_vertices=(),
        threshold: float | None = None,
        deadline: float | None = None,
        include_dual: bool = False,
        request_id=None,
    ) -> dict:
        """Mutate the hypergraph of request ``base`` and re-solve.

        ``remove_edges`` are edge positions in the base snapshot;
        ``set_weights`` is ``[(vertex, weight), ...]``;
        ``add_vertices`` lists the new vertices' weights.  The returned
        response's ``result`` carries ``warm``/``invalidated``.
        """
        message = {
            "op": "update",
            "id": request_id if request_id is not None
            else f"c{next(self._ids)}",
            "base": base,
        }
        if add_edges:
            message["add_edges"] = [list(edge) for edge in add_edges]
        if remove_edges:
            message["remove_edges"] = list(remove_edges)
        if set_weights:
            message["set_weights"] = [
                [vertex, _weight_for_json(weight)]
                for vertex, weight in set_weights
            ]
        if add_vertices:
            message["add_vertices"] = [
                _weight_for_json(weight) for weight in add_vertices
            ]
        if threshold is not None:
            message["threshold"] = threshold
        if deadline is not None:
            message["deadline"] = deadline
        if include_dual:
            message["include_dual"] = True
        return await self.request(message)

    async def delete_edge(
        self,
        base,
        position: int,
        *,
        deadline: float | None = None,
        request_id=None,
    ) -> dict:
        """Remove one edge (by base-snapshot position) and re-solve."""
        message = {
            "op": "delete_edge",
            "id": request_id if request_id is not None
            else f"c{next(self._ids)}",
            "base": base,
            "position": position,
        }
        if deadline is not None:
            message["deadline"] = deadline
        return await self.request(message)

    async def cancel(self, request_id) -> dict:
        return await self.request({"op": "cancel", "id": request_id})

    async def stats(self) -> dict:
        return await self.request(
            {"op": "stats", "id": f"c{next(self._ids)}"}
        )

    async def ping(self) -> dict:
        return await self.request(
            {"op": "ping", "id": f"c{next(self._ids)}"}
        )
