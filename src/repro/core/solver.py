"""Public solver API for the covering algorithms.

* :func:`solve_mwhvc` — the paper's main algorithm: a deterministic
  distributed ``(f + eps)``-approximation for Minimum Weight Hypergraph
  Vertex Cover (Theorem 9).
* :func:`solve_mwhvc_f_approx` — Corollary 10: an exact
  ``f``-approximation obtained by setting ``eps = 1/(n·w_max + 1)``.
* :func:`solve_mwvc` — the graph case (``f = 2``), Table 1's setting.
* :func:`solve_set_cover` — weighted Set Cover via the Section 2
  equivalence (set ids are vertex ids, element ids are hyperedge ids).
* :func:`solve_mwhvc_batch` — K independent instances advanced together
  over one shared CSR arena, bit-identical to K sequential
  ``executor="fastpath"`` runs.

All functions return a :class:`~repro.core.result.CoverResult` whose
certificate (when ``verify=True``, the default) is checked exactly.
"""

from __future__ import annotations

from collections.abc import Iterable
from fractions import Fraction
from numbers import Rational
from typing import Literal

from repro.core.batch import run_fastpath_batch
from repro.core.fastpath import run_fastpath
from repro.core.lockstep import run_lockstep
from repro.core.params import AlgorithmConfig
from repro.core.result import CoverResult
from repro.core.runner import run_congest
from repro.exceptions import InvalidInstanceError
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.setcover import SetCoverInstance

__all__ = [
    "solve_mwhvc",
    "solve_mwhvc_batch",
    "solve_mwhvc_f_approx",
    "solve_mwvc",
    "solve_set_cover",
    "f_approx_epsilon",
]

Executor = Literal["lockstep", "congest", "fastpath"]


def _execute(
    hypergraph: Hypergraph,
    config: AlgorithmConfig,
    executor: Executor,
    verify: bool,
    **executor_options,
) -> CoverResult:
    if executor in ("lockstep", "fastpath"):
        observer = executor_options.pop("observer", None)
        if executor == "fastpath":
            lane = executor_options.pop("lane", "auto")
        if executor_options:
            raise InvalidInstanceError(
                f"options {sorted(executor_options)} do not apply to "
                f"executor={executor!r} (lane= is fastpath-only; other "
                "options are congest-only)"
            )
        if executor == "fastpath":
            return run_fastpath(
                hypergraph, config, verify=verify, observer=observer,
                lane=lane,
            )
        return run_lockstep(hypergraph, config, verify=verify, observer=observer)
    if executor == "congest":
        if "observer" in executor_options:
            raise InvalidInstanceError(
                "observer is supported by the lockstep/fastpath executors "
                "only (the engine's metrics/tracing cover the congest path)"
            )
        if "lane" in executor_options:
            raise InvalidInstanceError(
                "lane forcing applies to executor='fastpath' only"
            )
        return run_congest(
            hypergraph, config, verify=verify, **executor_options
        )
    raise InvalidInstanceError(
        "executor must be 'lockstep', 'fastpath' or 'congest', "
        f"got {executor!r}"
    )


def solve_mwhvc(
    hypergraph: Hypergraph,
    epsilon: Rational | int | float | str = 1,
    *,
    config: AlgorithmConfig | None = None,
    executor: Executor = "lockstep",
    verify: bool = True,
    **congest_options,
) -> CoverResult:
    """Compute an ``(f + eps)``-approximate minimum weight vertex cover.

    Parameters
    ----------
    hypergraph:
        The instance; its rank is the ``f`` of the guarantee.
    epsilon:
        Approximation slack in ``(0, 1]``.  Ignored when an explicit
        ``config`` is passed (the config's epsilon wins).
    config:
        Full algorithm configuration; defaults to the paper's headline
        settings (spec schedule, multi increments, Theorem 9 alpha).
    executor:
        ``"lockstep"`` (object cores, introspectable), ``"fastpath"``
        (scaled-integer arrays, fastest, identical results) or
        ``"congest"`` (message-passing engine with round/bit metrics).
        All three are bit-identical on covers, duals, iterations and
        rounds — the differential test suite enforces it.
    verify:
        Check the Claim 20 certificate on the result (exact; on by
        default).
    congest_options:
        Passed to :func:`repro.core.runner.run_congest` (e.g.
        ``strict_bandwidth=True``, ``trace=...``).  For
        ``executor="fastpath"``, the single option ``lane=`` forces
        the entry point of the kernel-lane spill ladder
        (``"auto"`` / ``"int64"`` / ``"two-limb"`` / ``"three-limb"``
        / ``"bigint"``; see
        :mod:`repro.core.kernels`) — results are bit-identical on
        every lane, and the completing lane lands in
        ``CoverResult.lane``.
    """
    if config is None:
        config = AlgorithmConfig(epsilon=Fraction(epsilon))
    return _execute(hypergraph, config, executor, verify, **congest_options)


def solve_mwhvc_batch(
    hypergraphs: Iterable[Hypergraph],
    epsilon: Rational | int | float | str = 1,
    *,
    config: AlgorithmConfig | None = None,
    verify: bool = True,
    batched: bool = True,
    jobs: int = 1,
    stream: bool = False,
) -> list[CoverResult]:
    """Solve K independent MWHVC instances as one batched execution.

    Instances are packed into a shared CSR arena (see
    :mod:`repro.core.batch`) and advanced together, one vectorized
    sweep per iteration, masking instances that have already halted.
    Results are **bit-identical** to solving each instance with
    ``solve_mwhvc(..., executor="fastpath")`` — same covers, duals,
    iterations, rounds, levels and statistics, in input order — so a
    batch is purely a throughput optimization for request waves of
    many small-to-medium instances.

    Parameters
    ----------
    hypergraphs:
        The instances, in the order results are returned.
    epsilon / config / verify:
        As in :func:`solve_mwhvc`; the single config applies to every
        instance (rank-derived quantities like ``beta`` and ``z`` are
        still per-instance).
    batched:
        When ``False``, run the instances sequentially through the
        fastpath executor instead of the arena (a debugging/reference
        mode; the results are identical either way).  Arena execution
        also degrades to this path when numpy is unavailable.
    jobs:
        Number of worker processes (see :mod:`repro.core.parallel`):
        ``1`` (the default) runs the arena in-process, ``N > 1``
        shards the batch across a persistent pool of ``N`` workers
        (cost-model-balanced, shared-memory transport), and ``0`` (or
        any non-positive value) sizes the pool to the machine.
        Results are identical for every ``jobs`` value — parallelism
        only shows up in ``CoverResult.worker`` and wall-clock time.
    stream:
        Route the batch through a streaming
        :class:`~repro.core.stream.BatchSession` (admission one
        instance at a time, micro-batched shards, work-stealing
        scheduler) instead of the static sharded executor.  Purely a
        scheduling change — results stay bit-identical; useful with
        ``jobs > 1`` when the batch is cost-skewed and the static
        cost model would misbalance the shards.  The session always
        runs over the worker pool — with ``jobs=1`` that is a single
        worker process (correct but pure overhead); use ``jobs=0``
        (machine-sized) or ``jobs>1`` when streaming for speed.
    """
    if config is None:
        config = AlgorithmConfig(epsilon=Fraction(epsilon))
    if stream:
        if not batched:
            raise InvalidInstanceError(
                "stream applies to the batched executor only — drop "
                "batched=False/--sequential or the stream flag"
            )
        from repro.core.stream import BatchSession

        with BatchSession(config=config, jobs=jobs, verify=verify) as session:
            tickets = [session.submit(hypergraph) for hypergraph in hypergraphs]
            return [ticket.result() for ticket in tickets]
    if not batched:
        if jobs != 1:
            # Silently running the reference loop single-core under a
            # jobs= request would corrupt any timing comparison built
            # on it — the combination is contradictory, so reject it.
            raise InvalidInstanceError(
                "jobs applies to the batched executor only — drop "
                "batched=False/--sequential or use jobs=1"
            )
        return [
            run_fastpath(hypergraph, config, verify=verify)
            for hypergraph in hypergraphs
        ]
    if jobs == 1:
        return run_fastpath_batch(hypergraphs, config, verify=verify)
    from repro.core.parallel import run_fastpath_batch_parallel

    return run_fastpath_batch_parallel(
        hypergraphs, config, verify=verify, jobs=jobs
    )


def f_approx_epsilon(hypergraph: Hypergraph) -> Fraction:
    """The epsilon that turns ``(f + eps)`` into an exact ``f``-approximation.

    Corollary 10 uses ``eps = 1/(nW)``.  We take
    ``eps = 1/(n·w_max + 1)``: then ``eps * OPT_frac < 1`` (the
    fractional optimum is below ``n·w_max + 1``), so
    ``w(C) < f·OPT + 1`` and integrality of weights gives
    ``w(C) <= f·OPT``.
    """
    if hypergraph.num_vertices == 0:
        return Fraction(1)
    return Fraction(
        1, hypergraph.num_vertices * max(hypergraph.weights) + 1
    )


def solve_mwhvc_f_approx(
    hypergraph: Hypergraph,
    *,
    config: AlgorithmConfig | None = None,
    executor: Executor = "lockstep",
    verify: bool = True,
    **congest_options,
) -> CoverResult:
    """Corollary 10: a deterministic ``f``-approximation in ``O(f log n)`` rounds."""
    epsilon = f_approx_epsilon(hypergraph)
    if config is None:
        config = AlgorithmConfig(epsilon=epsilon)
    else:
        config = config.with_epsilon(epsilon)
    return _execute(hypergraph, config, executor, verify, **congest_options)


def solve_mwvc(
    graph: Hypergraph,
    epsilon: Rational | int | float | str = 1,
    **options,
) -> CoverResult:
    """Weighted Vertex Cover on a graph (every edge has <= 2 vertices).

    A thin wrapper over :func:`solve_mwhvc` that validates the rank, so
    callers reproducing Table 1 cannot accidentally feed hypergraphs.
    """
    if graph.rank > 2:
        raise InvalidInstanceError(
            f"solve_mwvc expects a graph (rank <= 2), got rank {graph.rank}"
        )
    return solve_mwhvc(graph, epsilon, **options)


def solve_set_cover(
    instance: SetCoverInstance,
    epsilon: Rational | int | float | str = 1,
    **options,
) -> CoverResult:
    """Weighted Set Cover via the Section 2 equivalence.

    The result's ``cover`` contains *set ids*; the guarantee is
    ``f + eps`` where ``f`` is the maximum element frequency.
    """
    return solve_mwhvc(instance.to_hypergraph(), epsilon, **options)
