"""Per-iteration observation of an MWHVC execution.

Research use of the library often needs *how* the algorithm converges,
not just the final cover: how fast duals grow, when vertices level up,
how the frontier of uncovered edges shrinks.  The lockstep executor
accepts an :class:`IterationObserver`; :class:`ConvergenceRecorder` is
the batteries-included implementation collecting one
:class:`IterationSnapshot` per iteration (cheap aggregates only — no
copies of per-edge state).

Example::

    recorder = ConvergenceRecorder()
    result = run_lockstep(hg, config, observer=recorder)
    for snap in recorder.snapshots:
        print(snap.iteration, snap.live_edges, float(snap.dual_total))
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Protocol

__all__ = ["IterationSnapshot", "IterationObserver", "ConvergenceRecorder"]


@dataclass(frozen=True, slots=True)
class IterationSnapshot:
    """Aggregates of the global state at the end of one iteration."""

    iteration: int
    live_edges: int
    live_vertices: int
    cover_size: int
    cover_weight: int
    dual_total: Fraction
    max_level: int
    joins_this_iteration: int
    edges_covered_this_iteration: int
    raised_edges_this_iteration: int


class IterationObserver(Protocol):
    """Callback protocol invoked by the lockstep executor."""

    def on_iteration(self, snapshot: IterationSnapshot) -> None:
        """Receive the end-of-iteration snapshot."""


class ConvergenceRecorder:
    """Records every snapshot; offers simple convergence summaries."""

    __slots__ = ("snapshots",)

    def __init__(self) -> None:
        self.snapshots: list[IterationSnapshot] = []

    def on_iteration(self, snapshot: IterationSnapshot) -> None:
        """Store the snapshot (IterationObserver implementation)."""
        self.snapshots.append(snapshot)

    @property
    def iterations(self) -> int:
        """Number of observed iterations."""
        return len(self.snapshots)

    def coverage_curve(self) -> list[tuple[int, float]]:
        """``(iteration, fraction of edges covered)`` per iteration."""
        if not self.snapshots:
            return []
        initial = (
            self.snapshots[0].live_edges
            + self.snapshots[0].edges_covered_this_iteration
        )
        total = max(initial, 1)
        covered = 0
        curve = []
        for snapshot in self.snapshots:
            covered += snapshot.edges_covered_this_iteration
            curve.append((snapshot.iteration, covered / total))
        return curve

    def dual_curve(self) -> list[tuple[int, float]]:
        """``(iteration, dual value)`` — monotone by construction."""
        return [
            (snapshot.iteration, float(snapshot.dual_total))
            for snapshot in self.snapshots
        ]

    def half_coverage_iteration(self) -> int | None:
        """First iteration at which half of all edges were covered."""
        for iteration, fraction in self.coverage_curve():
            if fraction >= 0.5:
                return iteration
        return None

    def sparkline(self, width: int = 60) -> str:
        """ASCII coverage curve (one char per sampled iteration)."""
        curve = self.coverage_curve()
        if not curve:
            return ""
        blocks = " .:-=+*#%@"
        step = max(1, len(curve) // width)
        sampled = curve[::step]
        return "".join(
            blocks[min(len(blocks) - 1, int(fraction * (len(blocks) - 1)))]
            for _, fraction in sampled
        )
