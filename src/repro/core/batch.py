"""Batched fastpath executor: many MWHVC instances, one CSR arena.

Serving request waves means solving many *independent* small-to-medium
instances per call, and the per-instance dispatch overhead of running
:func:`repro.core.fastpath.run_fastpath` in a loop — one Python
iteration loop and one set of numpy kernel launches per instance —
dominates once instances are small.  Algorithm MWHVC is uniform across
instances (the same (2+eps)-style transition rules apply to every one),
so a single vectorized sweep can advance a whole batch at once:

* :func:`repro.hypergraph.csr.pack_arena` concatenates the K instances
  into one shared CSR arena (disjoint global vertex/edge id ranges with
  per-instance offset tables);
* every per-iteration quantity — tightness, level increments, bid
  halvings, raise unanimity, dual growth — is evaluated by ``reduceat``
  / gather kernels over the arena, with instances that have already
  halted masked out of the live index sets;
* the transition *formulas* are the same ``*_scaled`` pure functions
  the scalar fastpath uses (:func:`repro.core.vertex_logic.is_tight_scaled`
  and :func:`~repro.core.vertex_logic.wants_raise_scaled` are applied
  directly to whole arrays), and iteration 0 is the shared
  :func:`repro.core.fastpath.prepare_scaled_state`.

Exactness is non-negotiable: results must be **bit-identical** to K
sequential ``executor="fastpath"`` runs.  The arena therefore stores
the scaled fixed-point integers in ``int64`` arrays and runs an
instance in the arena only while a conservative *headroom bound*
guarantees that no intermediate of a sweep can overflow: writing
``S = w_max * scale * max(beta_den, alpha) * 2**(z+2)``, the instance
is arena-eligible while ``S < 2**62``.  Instances that are ineligible
up front (no numpy, huge initial scale, fractional alphas, Appendix C
increments, checked mode) or whose dynamically growing scale outruns
the bound mid-run are *spilled*: solved by the scalar fastpath
executor, whose unbounded Python integers implement the identical
transitions.  Either lane, same bits — the differential tests in
``tests/test_batch_executor.py`` enforce it instance by instance.
"""

from __future__ import annotations

from repro.core.fastpath import (
    HAS_NUMPY,
    prepare_scaled_state,
    run_fastpath,
)
from repro.core.lockstep import (
    INIT_EXCHANGE_ROUNDS,
    empty_instance_rounds,
    phase_a_round,
)
from repro.core.numeric import scaled_fraction
from repro.core.params import AlgorithmConfig
from repro.core.result import AlgorithmStats, CoverResult
from repro.core.runner import finalize_result
from repro.core.vertex_logic import (
    is_tight_scaled,
    tight_threshold_scaled,
    wants_raise_scaled,
)
from repro.exceptions import (
    InvariantViolationError,
    RoundLimitExceededError,
)
from repro.hypergraph.csr import BatchArena, pack_arena
from repro.hypergraph.hypergraph import Hypergraph

try:  # pragma: no cover - exercised implicitly by either branch
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["run_fastpath_batch", "arena_eligibility"]

#: Bit budget for every int64 intermediate of one arena sweep.  An
#: instance lives in the arena only while its headroom product stays
#: below ``2**_HEADROOM_BITS`` (tests shrink this to force spills).
_HEADROOM_BITS = 62


def arena_eligibility(
    hypergraph: Hypergraph,
    config: AlgorithmConfig,
    state=None,
) -> tuple[bool, str]:
    """Whether the int64 arena lane can run this instance exactly.

    Returns ``(eligible, reason)``; ``reason`` names the first failed
    requirement (or is ``"ok"``).  ``state`` may pass a precomputed
    :class:`~repro.core.fastpath.ScaledState` to avoid recomputing
    iteration 0.
    """
    if not HAS_NUMPY:
        return False, "numpy unavailable"
    if hypergraph.num_edges == 0:
        return False, "empty instance (solved directly)"
    if config.increment_mode != "multi":
        return False, "single-increment mode uses the scalar executor"
    if config.check_invariants:
        return False, "checked runs use the scalar executor"
    if state is None:
        state = prepare_scaled_state(hypergraph, config)
    if any(den != 1 for den in state.alpha_den):
        return False, "fractional alpha uses the scalar executor"
    if state.scale > _scale_limit(hypergraph, config, state):
        return False, "initial scale exceeds the int64 headroom"
    return True, "ok"


def _scale_limit(
    hypergraph: Hypergraph, config: AlgorithmConfig, state
) -> int:
    """Largest scale for which every sweep intermediate fits in int64.

    The coarsest bound over one sweep's arithmetic: bids and duals stay
    below ``w_max * scale`` (Claims 1-2), flags and level tests shift
    by at most ``z``, the tightness test multiplies by ``beta_den`` and
    raises multiply by ``alpha`` — so ``w_max * scale *
    max(beta_den, alpha_num) * 2**(z+2) < 2**_HEADROOM_BITS`` keeps
    everything representable.
    """
    rank = hypergraph.rank
    beta = config.beta(rank)
    z = config.z(rank)
    w_max = max(hypergraph.weights)
    factor = max(beta.denominator, max(state.alpha_num, default=2))
    headroom = w_max * factor << (z + 2)
    return (1 << _HEADROOM_BITS) // headroom


def run_fastpath_batch(
    hypergraphs,
    config: AlgorithmConfig | None = None,
    *,
    verify: bool = True,
) -> list[CoverResult]:
    """Solve K independent instances, bit-identical to K fastpath runs.

    Eligible instances are packed into one shared CSR arena and
    advanced together, one vectorized sweep per iteration, masking
    instances that have already halted; the rest (and any instance
    whose scale outgrows the arena's int64 headroom mid-run) are solved
    by :func:`~repro.core.fastpath.run_fastpath`.  Per-instance results
    — covers, duals, iterations, rounds, levels, statistics and
    certificates — are indistinguishable from running the instances
    one at a time with ``executor="fastpath"``.
    """
    config = config or AlgorithmConfig()
    instances = list(hypergraphs)
    results: list[CoverResult | None] = [None] * len(instances)
    arena_members: list[tuple[int, Hypergraph, object]] = []
    solo: list[int] = []
    prepared: dict[int, object] = {}
    for index, hypergraph in enumerate(instances):
        if hypergraph.num_edges == 0:
            results[index] = _empty_result(hypergraph, config, verify)
            continue
        state = None
        if HAS_NUMPY:
            state = prepare_scaled_state(hypergraph, config)
            prepared[index] = state
        eligible, _ = arena_eligibility(hypergraph, config, state)
        if eligible:
            arena_members.append((index, hypergraph, state))
        else:
            solo.append(index)

    if arena_members:
        solved, spilled = _ArenaRun(
            [pair[1] for pair in arena_members],
            [pair[2] for pair in arena_members],
            config,
        ).solve()
        for position, (index, hypergraph, _) in enumerate(arena_members):
            if position in spilled:
                solo.append(index)
            else:
                results[index] = _finalize_arena_instance(
                    hypergraph, config, solved[position], verify
                )

    # Solo lane: ineligible and spilled instances run through the
    # scalar fastpath executor, reusing the already-computed iteration-0
    # state (the arena only copies it, so spilled states are pristine).
    for index in solo:
        results[index] = run_fastpath(
            instances[index],
            config,
            verify=verify,
            state=prepared.get(index),
        )
    return results  # type: ignore[return-value]


def _empty_result(
    hypergraph: Hypergraph, config: AlgorithmConfig, verify: bool
) -> CoverResult:
    """The edgeless-instance result (same as fastpath's early return)."""
    n = hypergraph.num_vertices
    return finalize_result(
        hypergraph,
        config,
        cover=frozenset(),
        dual={},
        levels=(0,) * n,
        stats=AlgorithmStats.empty(level_cap=config.z(hypergraph.rank)),
        alphas=[],
        iterations=0,
        rounds=empty_instance_rounds(n),
        metrics=None,
        verify=verify,
    )


def _finalize_arena_instance(
    hypergraph: Hypergraph,
    config: AlgorithmConfig,
    raw: dict,
    verify: bool,
) -> CoverResult:
    """Convert one instance's arena slice back to exact Fractions."""
    scale = raw["scale"]
    dual = {
        edge_id: scaled_fraction(value, scale)
        for edge_id, value in enumerate(raw["delta"])
    }
    return finalize_result(
        hypergraph,
        config,
        cover=frozenset(raw["cover"]),
        dual=dual,
        levels=tuple(raw["levels"]),
        stats=raw["stats"],
        alphas=raw["alphas"],
        iterations=raw["iterations"],
        rounds=raw["rounds"],
        metrics=None,
        verify=verify,
        dual_total=scaled_fraction(sum(raw["delta"]), scale),
    )


class _ArenaRun:
    """One batched execution over a shared CSR arena (int64 lane)."""

    def __init__(self, hypergraphs, states, config: AlgorithmConfig):
        self.config = config
        self.spec = config.schedule == "spec"
        self.count = len(hypergraphs)
        self.hypergraphs = hypergraphs
        self.states = states
        arena: BatchArena = pack_arena(hypergraphs)
        self.arena = arena
        total_v = arena.total_vertices
        total_e = arena.total_edges

        int64 = _np.int64
        # -- edge-side state ------------------------------------------
        self.bid = _np.array(
            [value for state in states for value in state.bid], dtype=int64
        )
        self.raised = _np.array(
            [value for state in states for value in state.raised],
            dtype=int64,
        )
        self.delta = self.bid.copy()
        self.alpha_num_e = _np.array(
            [num for state in states for num in state.alpha_num],
            dtype=int64,
        )
        self.covered = _np.zeros(total_e, dtype=bool)
        self.live_edge = _np.ones(total_e, dtype=bool)
        self.raise_count = _np.zeros(total_e, dtype=int64)
        self.halving_count = _np.zeros(total_e, dtype=int64)
        self.inst_e = _np.array(arena.instance_of_edge, dtype=int64)

        # -- vertex-side state ----------------------------------------
        self.scales = [state.scale for state in states]
        beta_den, z_caps, limits = [], [], []
        weight_scaled: list[int] = []
        tight_rhs: list[int] = []
        for hypergraph, state in zip(hypergraphs, states):
            beta = config.beta(hypergraph.rank)
            beta_den.append(beta.denominator)
            z_caps.append(config.z(hypergraph.rank))
            limits.append(_scale_limit(hypergraph, config, state))
            for vertex in range(hypergraph.num_vertices):
                weight = hypergraph.weight(vertex)
                weight_scaled.append(weight * state.scale)
                tight_rhs.append(
                    tight_threshold_scaled(
                        weight, beta.numerator, beta.denominator,
                        state.scale,
                    )
                )
        self.z_caps = z_caps
        self.limits = limits
        self.weight_scaled = _np.array(weight_scaled, dtype=int64)
        self.tight_rhs = _np.array(tight_rhs, dtype=int64)
        self.total_delta = _np.array(
            [value for state in states for value in state.total_delta],
            dtype=int64,
        )
        degrees = _np.array(
            [deg for state in states for deg in state.degrees], dtype=int64
        )
        self.uncovered_count = degrees.copy()
        self.level = _np.zeros(total_v, dtype=int64)
        self.k_inc = _np.zeros(total_v, dtype=int64)
        self.flags = _np.zeros(total_v, dtype=int64)
        self.in_cover = _np.zeros(total_v, dtype=bool)
        self.dead = degrees == 0
        self.inst_v = _np.array(arena.instance_of_vertex, dtype=int64)
        self.beta_den_v = _np.repeat(
            _np.array(beta_den, dtype=int64),
            _np.diff(_np.array(arena.vertex_offset, dtype=int64)),
        )
        self.z_v = _np.repeat(
            _np.array(z_caps, dtype=int64),
            _np.diff(_np.array(arena.vertex_offset, dtype=int64)),
        )
        z_max = max(z_caps)
        self.stuck = _np.zeros((total_v, z_max), dtype=int64)

        # -- CSR kernels ----------------------------------------------
        membership = arena.membership
        self.e_cells = _np.array(membership.cells, dtype=int64)
        self.e_starts = _np.array(membership.starts, dtype=int64)
        self.e_lengths = _np.array(membership.lengths, dtype=int64)
        # The incidence layout is the membership transpose: a stable
        # sort of the membership cells groups the (edge, vertex) pairs
        # by vertex while keeping ascending edge ids inside each group.
        order = _np.argsort(self.e_cells, kind="stable")
        self.v_cells = _np.repeat(
            _np.arange(total_e, dtype=int64), self.e_lengths
        )[order]
        v_lengths = _np.bincount(self.e_cells, minlength=total_v).astype(
            int64
        )
        v_starts = _np.zeros(total_v, dtype=int64)
        _np.cumsum(v_lengths[:-1], out=v_starts[1:])
        self.v_starts = v_starts
        self.v_lengths = v_lengths
        live_start = _np.nonzero(v_lengths > 0)[0]

        # -- per-instance bookkeeping ---------------------------------
        self.active = _np.ones(self.count, dtype=bool)
        self.spilled: set[int] = set()
        self.iterations = [0] * self.count
        self.halt_round = _np.full(
            self.count, INIT_EXCHANGE_ROUNDS, dtype=int64
        )
        self.live_v = live_start
        self.live_e = _np.arange(total_e, dtype=int64)

    # ------------------------------------------------------------------
    # Gather / segment kernels
    # ------------------------------------------------------------------

    def _expand_segments(self, ids, starts, lengths):
        """Flat cell positions of the given segments, concatenated."""
        lens = lengths[ids]
        total = int(lens.sum())
        if total == 0:
            return _np.empty(0, dtype=_np.int64)
        ends = _np.cumsum(lens)
        inner = _np.arange(total, dtype=_np.int64) - _np.repeat(
            ends - lens, lens
        )
        return _np.repeat(starts[ids], lens) + inner

    def _edge_view(self):
        """Live-edge subset CSR: (live edges, segment starts, cells).

        Rebuilt per sweep so every structural kernel touches only the
        cells of edges that are still uncovered — the live sets shrink
        fast, and full-arena kernels would dominate the tail sweeps.
        """
        live = self.live_e
        lengths = self.e_lengths[live]
        starts = _np.zeros(live.size, dtype=_np.int64)
        if live.size:
            _np.cumsum(lengths[:-1], out=starts[1:])
        cells = self.e_cells[
            self._expand_segments(live, self.e_starts, self.e_lengths)
        ]
        return live, starts, cells

    def _vertex_view(self):
        """Live-vertex subset CSR over the incidence layout."""
        live = self.live_v
        lengths = self.v_lengths[live]
        starts = _np.zeros(live.size, dtype=_np.int64)
        if live.size:
            _np.cumsum(lengths[:-1], out=starts[1:])
        cells = self.v_cells[
            self._expand_segments(live, self.v_starts, self.v_lengths)
        ]
        return live, starts, cells

    def _live_vertex_sums(self, edge_values, vertex_view):
        """Per-live-vertex sums of an edge array over live incident
        edges, aligned with the view's vertex order."""
        live, starts, cells = vertex_view
        if not live.size:
            return _np.empty(0, dtype=_np.int64)
        # Gather first, mask second: O(live cells), not O(total edges).
        masked = edge_values[cells] * self.live_edge[cells]
        return _np.add.reduceat(masked, starts)

    # ------------------------------------------------------------------
    # Sweep phases
    # ------------------------------------------------------------------

    def _level_up(self, vertices, running):
        """Step 3d's while-loop, vectorized over a shrinking index set."""
        self.k_inc[vertices] = 0
        idx = vertices
        while idx.size:
            shift = self.level[idx] + 1
            over = (running << shift) > (
                self.weight_scaled[idx] * ((1 << shift) - 1)
            )
            idx = idx[over]
            running = running[over]
            if not idx.size:
                break
            self.level[idx] += 1
            self.k_inc[idx] += 1
            capped = self.level[idx] >= self.z_v[idx]
            if capped.any():
                vertex = int(idx[capped][0])
                instance = int(self.inst_v[vertex])
                local = vertex - self.arena.vertex_offset[instance]
                raise InvariantViolationError(
                    f"vertex {local} reached level "
                    f"{int(self.level[vertex])} >= "
                    f"z = {self.z_caps[instance]} (Claim 4 violated)"
                )

    def _record_flags(self, vertices, sums, extra_shift=None):
        """Step 3e for a vertex set: flags plus stuck statistics.

        ``sums`` is aligned with ``vertices`` (one weighted-bid sum per
        entry, as produced by :meth:`_live_vertex_sums`).
        """
        if not vertices.size:
            return
        weight = self.weight_scaled[vertices]
        if extra_shift is None:
            raise_flag = wants_raise_scaled(
                sums, weight, self.level[vertices]
            )
        else:
            raise_flag = wants_raise_scaled(
                sums,
                weight,
                self.level[vertices],
                extra_shift=extra_shift,
            )
        self.flags[vertices] = raise_flag
        stuck = vertices[~raise_flag]
        if stuck.size:
            _np.add.at(self.stuck, (stuck, self.level[stuck]), 1)

    def _mark_coverage(self, joiners):
        """Edges of this sweep's joiners become covered."""
        if not joiners.size:
            return _np.empty(0, dtype=_np.int64)
        cells = self.v_cells[
            self._expand_segments(joiners, self.v_starts, self.v_lengths)
        ]
        newly = _np.unique(cells[~self.covered[cells]])
        if newly.size:
            self.covered[newly] = True
            self.live_edge[newly] = False
            self.live_e = self.live_e[~self.covered[self.live_e]]
        return newly

    def _apply_coverage(self, newly):
        """Non-joining members learn coverage; returns childless ones."""
        if not newly.size:
            return _np.empty(0, dtype=_np.int64)
        cells = self.e_cells[
            self._expand_segments(newly, self.e_starts, self.e_lengths)
        ]
        members = cells[~self.in_cover[cells]]
        _np.subtract.at(self.uncovered_count, members, 1)
        candidates = _np.unique(members)
        terminated = candidates[
            (self.uncovered_count[candidates] == 0)
            & ~self.dead[candidates]
        ]
        if terminated.size:
            self.dead[terminated] = True
        return terminated

    def _halve_edges(self, edge_view) -> bool:
        """Step 3d (edge half) with per-instance dynamic rescaling.

        The scalar executor rescales lazily edge by edge; the combined
        factor it reaches is ``2**max(count - trailing_zeros)`` over
        the instance's halving edges, independent of processing order,
        so the arena applies that factor to the whole instance slice at
        once.  Instances whose scale would outgrow the int64 headroom
        are spilled to the scalar lane instead; returns whether any
        instance spilled (the caller's live views are then stale).
        """
        live, starts, cells = edge_view
        if not live.size:
            return False
        totals = _np.add.reduceat(self.k_inc[cells], starts)
        mask = totals > 0
        halving = live[mask]
        if not halving.size:
            return False
        counts = totals[mask]
        joint = self.bid[halving] | self.raised[halving]
        low_bit = joint & -joint
        trailing = _np.log2(low_bit.astype(_np.float64)).astype(_np.int64)
        deficit = counts - trailing
        lacking = deficit > 0
        spilled_now = False
        if lacking.any():
            factors = _np.zeros(self.count, dtype=_np.int64)
            _np.maximum.at(
                factors, self.inst_e[halving[lacking]], deficit[lacking]
            )
            for instance in _np.nonzero(factors)[0]:
                instance = int(instance)
                shift = int(factors[instance])
                new_scale = self.scales[instance] << shift
                if new_scale > self.limits[instance]:
                    self._spill(instance)
                    spilled_now = True
                    continue
                self.scales[instance] = new_scale
                vertex_slice = self.arena.vertex_slice(instance)
                edge_slice = self.arena.edge_slice(instance)
                for array in (self.bid, self.raised, self.delta):
                    array[edge_slice] <<= shift
                for array in (
                    self.total_delta,
                    self.weight_scaled,
                    self.tight_rhs,
                ):
                    array[vertex_slice] <<= shift
            if spilled_now:
                keep = self.live_edge[halving]
                halving = halving[keep]
                counts = counts[keep]
                if not halving.size:
                    return True
        self.halving_count[halving] += counts
        self.bid[halving] >>= counts
        self.raised[halving] >>= counts
        return spilled_now

    def _raise_and_grow(self, edge_view, vertex_view):
        """Step 3f across the live arena: raises, then dual growth."""
        live, starts, cells = edge_view
        if live.size:
            unanimous = _np.bitwise_and.reduceat(self.flags[cells], starts)
            raising = live[unanimous == 1]
            if raising.size:
                self.raise_count[raising] += 1
                self.bid[raising] = self.raised[raising]
                self.raised[raising] = (
                    self.bid[raising] * self.alpha_num_e[raising]
                )
            self.delta[live] += self.bid[live]
        vertices = vertex_view[0]
        if vertices.size:
            self.total_delta[vertices] += self._live_vertex_sums(
                self.bid, vertex_view
            )

    def _spill(self, instance: int) -> None:
        """Abandon an instance's arena state; the scalar lane re-runs it."""
        self.spilled.add(instance)
        self.active[instance] = False
        edge_slice = self.arena.edge_slice(instance)
        self.live_edge[edge_slice] = False
        self._filter_live()

    def _filter_live(self) -> None:
        self.live_v = self.live_v[self.active[self.inst_v[self.live_v]]]
        self.live_e = self.live_e[self.active[self.inst_e[self.live_e]]]

    def _bump_halt(self, instances, value: int) -> None:
        if instances.size:
            _np.maximum.at(self.halt_round, instances, value)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def solve(self) -> tuple[dict[int, dict], set[int]]:
        config = self.config
        spec = self.spec
        sweep = 0
        while self.live_e.size:
            sweep += 1
            if sweep > config.max_iterations:
                raise RoundLimitExceededError(
                    f"no termination after {config.max_iterations} "
                    f"iterations; {self.live_e.size} edges uncovered "
                    "across the batch"
                )
            round_a = phase_a_round(sweep, spec=spec)

            live = self.live_v
            if not spec:
                # Compact: flags are fixed in phase A on the previous
                # sweep's bids/coverage, before joins are applied.
                pre_view = self._vertex_view()
                pre_sums = self._live_vertex_sums(self.raised, pre_view)

            running = self.total_delta[live]
            tight = is_tight_scaled(
                running, self.beta_den_v[live], self.tight_rhs[live]
            )
            joiners = live[tight]
            if joiners.size:
                self.in_cover[joiners] = True
            nonjoin = live[~tight]
            self._level_up(nonjoin, running[~tight])
            if not spec:
                self._record_flags(
                    nonjoin,
                    pre_sums[~tight],
                    extra_shift=self.k_inc[nonjoin],
                )

            newly = self._mark_coverage(joiners)
            self._bump_halt(self.inst_v[joiners], round_a)
            self._bump_halt(self.inst_e[newly], round_a + 1)

            if spec:
                terminated = self._apply_coverage(newly)
                self._bump_halt(self.inst_v[terminated], round_a + 2)
                self.live_v = self.live_v[
                    ~self.in_cover[self.live_v] & ~self.dead[self.live_v]
                ]
                edge_view = self._edge_view()
                if self._halve_edges(edge_view):
                    edge_view = self._edge_view()
                vertex_view = self._vertex_view()
                self._record_flags(
                    vertex_view[0],
                    self._live_vertex_sums(self.raised, vertex_view),
                )
                self._raise_and_grow(edge_view, vertex_view)
            else:
                edge_view = self._edge_view()
                if self._halve_edges(edge_view):
                    edge_view = self._edge_view()
                self._raise_and_grow(edge_view, self._vertex_view())
                terminated = self._apply_coverage(newly)
                self._bump_halt(self.inst_v[terminated], round_a + 2)
                self.live_v = self.live_v[
                    ~self.in_cover[self.live_v] & ~self.dead[self.live_v]
                ]

            remaining = _np.bincount(
                self.inst_e[self.live_e], minlength=self.count
            )
            finished = _np.nonzero(self.active & (remaining == 0))[0]
            if finished.size:
                for instance in finished:
                    instance = int(instance)
                    self.iterations[instance] = sweep
                    self.active[instance] = False
                self._filter_live()

        return {
            instance: self._collect(instance)
            for instance in range(self.count)
            if instance not in self.spilled
        }, self.spilled

    def _collect(self, instance: int) -> dict:
        vertex_slice = self.arena.vertex_slice(instance)
        edge_slice = self.arena.edge_slice(instance)
        levels = self.level[vertex_slice]
        raises = self.raise_count[edge_slice]
        stuck = self.stuck[vertex_slice]
        stats = AlgorithmStats(
            total_raise_events=int(raises.sum()),
            max_raises_per_edge=int(raises.max()),
            total_stuck_events=int(stuck.sum()),
            max_stuck_per_vertex_level=int(stuck.max()),
            total_halvings=int(self.halving_count[edge_slice].sum()),
            max_level=int(levels.max()),
            level_cap=self.z_caps[instance],
        )
        return {
            "scale": self.scales[instance],
            "cover": _np.nonzero(self.in_cover[vertex_slice])[0].tolist(),
            "delta": self.delta[edge_slice].tolist(),
            "levels": levels.tolist(),
            "stats": stats,
            "alphas": list(self.states[instance].alpha_list),
            "iterations": self.iterations[instance],
            "rounds": int(self.halt_round[instance]),
        }
