"""Batched fastpath executor: many MWHVC instances, one CSR arena.

Serving request waves means solving many *independent* small-to-medium
instances per call, and the per-instance dispatch overhead of running
:func:`repro.core.fastpath.run_fastpath` in a loop — one iteration
loop and one set of numpy kernel launches per instance — dominates
once instances are small.  Algorithm MWHVC is uniform across instances
(the same (2+eps)-style transition rules apply to every one), so a
single vectorized sweep can advance a whole batch at once:

* :func:`repro.hypergraph.csr.pack_arena` concatenates the K instances
  into one shared CSR arena (disjoint global vertex/edge id ranges with
  per-instance offset tables);
* the sweep engine itself is the shared kernel layer of
  :class:`repro.core.kernels.LaneRun` — the same guarded machine-width
  kernels the single-instance fastpath loop uses since PR 3 — with
  instances that have already halted masked out of the live index
  sets;
* the transition *formulas* are the same ``*_scaled`` pure functions
  every scaled executor uses, and iteration 0 is the shared
  :func:`repro.core.fastpath.prepare_scaled_state`.

Exactness is non-negotiable: results must be **bit-identical** to K
sequential ``executor="fastpath"`` runs.  Eligible instances therefore
run in an ``int64`` arena only while the conservative headroom bound
of :func:`repro.core.kernels.scale_limit` guarantees that no sweep
intermediate can overflow; instances that outgrow int64 — up front or
mid-run — step down the spill ladder instead of erroring: one arena
per machine lane (``kernels.MACHINE_LANES``: int64, the two-limb
~128-bit lane, the three-limb ~192-bit lane) admits progressively
larger scale / alpha / weight regimes, and anything beyond the widest
machine lane (or structurally ineligible: no numpy, fractional alphas,
Appendix C increments, checked mode) is solved by the scalar fastpath
executor, whose unbounded Python integers implement the identical
transitions.  Mid-run spills *carry* the instance's live scaled state
across the lane boundary (see
:meth:`repro.core.kernels.LaneRun._extract_carry`): each wider arena
and the big-int loop resume from the interrupted iteration, never
replaying finished work.  Any lane, same bits — the differential
tests in ``tests/test_batch_executor.py`` and
``tests/test_kernel_lanes.py`` enforce it instance by instance.

For multi-core scaling, :mod:`repro.core.parallel` shards a batch
across a persistent worker pool (``solve_mwhvc_batch(..., jobs=N)``),
running this module's executor inside each worker.
"""

from __future__ import annotations

from repro.core import kernels
from repro.core.fastpath import (
    HAS_NUMPY,
    prepare_scaled_state,
    run_fastpath,
)
from repro.core.kernels import (
    MACHINE_LANES,
    LaneRun,
    finalize_lane_instance,
    headroom_factor,
    lane_eligibility,
    lane_ops,
)
from repro.core.lockstep import empty_instance_rounds
from repro.core.params import AlgorithmConfig
from repro.core.result import AlgorithmStats, CoverResult
from repro.core.runner import finalize_result
from repro.hypergraph.csr import slice_arena
from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["run_fastpath_batch", "arena_eligibility"]

#: Override for the int64 arena's headroom budget.  ``None`` (the
#: default) defers to ``kernels.INT64_HEADROOM_BITS`` at call time, so
#: the solo fastpath and the batch arena always agree on the budget;
#: tests shrink this module attribute to force arena-only spills onto
#: the wider lanes.
_HEADROOM_BITS: int | None = None


def _int64_headroom_bits() -> int:
    return (
        _HEADROOM_BITS
        if _HEADROOM_BITS is not None
        else kernels.INT64_HEADROOM_BITS
    )


def arena_eligibility(
    hypergraph: Hypergraph,
    config: AlgorithmConfig,
    state=None,
) -> tuple[bool, str]:
    """Whether the int64 arena lane can run this instance exactly.

    Returns ``(eligible, reason)``; ``reason`` names the first failed
    requirement (or is ``"ok"``).  ``state`` may pass a precomputed
    :class:`~repro.core.fastpath.ScaledState` to avoid recomputing
    iteration 0.  Never raises on instances it cannot bound (e.g.
    fractional weights whose scaled range exceeds the headroom): those
    are simply ineligible and take a wider lane.
    """
    if not HAS_NUMPY:
        return False, "numpy unavailable"
    if hypergraph.num_edges == 0:
        return False, "empty instance (solved directly)"
    if state is None:
        state = prepare_scaled_state(hypergraph, config)
    return lane_eligibility(
        hypergraph,
        config,
        state,
        lane="int64",
        headroom_bits=_int64_headroom_bits(),
    )


def _scale_limit(
    hypergraph: Hypergraph, config: AlgorithmConfig, state
) -> int:
    """Largest scale keeping every int64 sweep intermediate in bounds.

    Delegates to :func:`repro.core.kernels.scale_limit` with this
    module's (test-adjustable) headroom budget.
    """
    rank = hypergraph.rank
    return kernels.scale_limit(
        hypergraph.max_weight,
        headroom_factor(config, rank, state),
        config.z(rank),
        _int64_headroom_bits(),
    )


def run_fastpath_batch(
    hypergraphs,
    config: AlgorithmConfig | None = None,
    *,
    verify: bool = True,
    arena=None,
) -> list[CoverResult]:
    """Solve K independent instances, bit-identical to K fastpath runs.

    Eligible instances are packed into one shared CSR arena per kernel
    lane (int64 first, then the two-limb and three-limb wide lanes for
    instances beyond int64's headroom) and advanced together, one
    vectorized sweep per
    iteration, masking instances that have already halted; the rest —
    and any instance whose scale outgrows its arena's headroom mid-run
    — step down the spill ladder to the scalar
    :func:`~repro.core.fastpath.run_fastpath`.  Per-instance results —
    covers, duals, iterations, rounds, levels, statistics and
    certificates — are indistinguishable from running the instances
    one at a time with ``executor="fastpath"``.

    ``arena`` may pass the instances' already-packed
    :class:`~repro.hypergraph.csr.BatchArena` (positionally matching
    ``hypergraphs``, e.g. a worker's shipped shard): the per-lane
    eligibility groups are then *sliced* out of it
    (:func:`~repro.hypergraph.csr.slice_arena`) instead of re-packed
    from the instances — same bits, minus the rebuild.
    """
    config = config or AlgorithmConfig()
    instances = list(hypergraphs)
    results: list[CoverResult | None] = [None] * len(instances)
    # Arena members are ``(index, hypergraph, state, carry)`` — the
    # carry (None for fresh instances) travels inside the tuple so it
    # can never fall out of alignment with its instance.  One group per
    # machine lane; each instance joins the strongest lane that admits
    # it (the int64 rung honors this module's headroom override).
    groups: dict[str, list[tuple[int, Hypergraph, object, dict | None]]] = {
        lane: [] for lane in MACHINE_LANES
    }
    solo: list[tuple[int, str, dict | None]] = []
    prepared: dict[int, object] = {}
    for index, hypergraph in enumerate(instances):
        if hypergraph.num_edges == 0:
            results[index] = _empty_result(hypergraph, config, verify)
            continue
        state = None
        if HAS_NUMPY:
            state = prepare_scaled_state(hypergraph, config)
            prepared[index] = state
        eligible, _ = arena_eligibility(hypergraph, config, state)
        if eligible:
            groups["int64"].append((index, hypergraph, state, None))
            continue
        if state is not None:
            for lane in MACHINE_LANES[1:]:
                wider, _ = lane_eligibility(
                    hypergraph, config, state, lane=lane
                )
                if wider:
                    groups[lane].append((index, hypergraph, state, None))
                    break
            else:
                solo.append((index, "auto", None))
            continue
        solo.append((index, "auto", None))

    def run_arena(members, ops, limits):
        """Finalize completed members; return spilled ones with carries."""
        carries = [member[3] for member in members]
        lane_arena = (
            slice_arena(arena, [member[0] for member in members])
            if arena is not None
            else None
        )
        solved, spills = LaneRun(
            [member[1] for member in members],
            [member[2] for member in members],
            config,
            ops=ops,
            limits=limits,
            carries=carries if any(carries) else None,
            arena=lane_arena,
        ).solve()
        spilled = []
        for position, (index, hypergraph, state, _) in enumerate(members):
            if position in spills:
                spilled.append((index, hypergraph, state, spills[position]))
            else:
                results[index] = finalize_lane_instance(
                    hypergraph, config, solved[position], verify,
                    lane=ops.name,
                )
        return spilled

    # Run one arena per lane, strongest first.  Mid-run spills resume
    # *from the interrupted iteration* on the next lane whose headroom
    # admits the carried scale (joining that lane's up-front members —
    # a wider group is only launched after every narrower one has run),
    # else on the scalar big-int loop — never replaying finished
    # iterations.
    for rung, lane in enumerate(MACHINE_LANES):
        members = groups[lane]
        if not members:
            continue
        if lane == "int64":
            limits = [
                _scale_limit(hypergraph, config, state)
                for _, hypergraph, state, _ in members
            ]
        else:
            limits = kernels.default_scale_limits(
                [member[1] for member in members],
                config,
                [member[2] for member in members],
                lane=lane,
            )
        spilled = run_arena(members, lane_ops(lane), limits)
        wider_lanes = MACHINE_LANES[rung + 1:]
        for index, hypergraph, state, carry in spilled:
            for wider in wider_lanes:
                admits, _ = lane_eligibility(
                    hypergraph, config, state, lane=wider,
                    scale=carry["scale"],
                )
                if admits:
                    groups[wider].append((index, hypergraph, state, carry))
                    break
            else:
                solo.append((index, "bigint", carry))

    # Spill ladder tail: up-front ineligible instances run through the
    # scalar fastpath executor, reusing the already-computed iteration-0
    # state (the arenas only copy it, so spilled states are pristine);
    # instances that spilled past the widest machine arena resume the
    # big-int loop from their carried iteration.
    for index, lane, carry in solo:
        results[index] = run_fastpath(
            instances[index],
            config,
            verify=verify,
            state=prepared.get(index),
            lane=lane,
            carry=carry,
        )
    return results  # type: ignore[return-value]


def _empty_result(
    hypergraph: Hypergraph, config: AlgorithmConfig, verify: bool
) -> CoverResult:
    """The edgeless-instance result (same as fastpath's early return)."""
    n = hypergraph.num_vertices
    return finalize_result(
        hypergraph,
        config,
        cover=frozenset(),
        dual={},
        levels=(0,) * n,
        stats=AlgorithmStats.empty(level_cap=config.z(hypergraph.rank)),
        alphas=[],
        iterations=0,
        rounds=empty_instance_rounds(n),
        metrics=None,
        verify=verify,
    )
