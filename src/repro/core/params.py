"""Algorithm parameters: ``eps``, ``beta``, levels cap ``z``, and ``alpha``.

Section 3.1 of the paper defines ``beta = eps/(f + eps)`` and the level
cap ``z = ceil(log2(1/beta))`` (Claim 4 shows no vertex ever reaches
level ``z``).  Theorem 9 chooses the bid multiplier ``alpha`` from
``Δ``, ``f``, ``eps`` and a constant ``gamma`` to obtain the optimal
round bound; the remark after Theorem 8 allows a *local* alpha computed
per hyperedge from the local maximum degree ``Δ(e)``.

This module centralizes those choices in :class:`AlgorithmConfig` so
every driver (CONGEST nodes, lockstep executor, ILP simulation) agrees
on the exact rationals used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Literal

from repro.core.numeric import ceil_log2_fraction, parse_epsilon
from repro.exceptions import InvalidInstanceError

__all__ = [
    "AlgorithmConfig",
    "beta_from",
    "level_cap",
    "theorem9_alpha",
    "resolve_alpha",
]

Schedule = Literal["spec", "compact"]
IncrementMode = Literal["multi", "single"]
AlphaPolicy = Literal["theorem9", "fixed", "local"]

#: Denominator bound when snapping a real-valued alpha to a Fraction.
#: Keeps bid denominators small without materially changing the policy.
_ALPHA_DENOMINATOR_LIMIT = 4096


def beta_from(rank: int, epsilon: Fraction) -> Fraction:
    """``beta = eps / (f + eps)`` (Section 3.1).

    For rank 0 (edgeless instance) the value is irrelevant; we use
    ``f = 1`` to keep it well defined.
    """
    effective_rank = max(1, rank)
    return epsilon / (effective_rank + epsilon)


def level_cap(rank: int, epsilon: Fraction) -> int:
    """``z = ceil(log2(1/beta))``; levels always stay below ``z`` (Claim 4)."""
    beta = beta_from(rank, epsilon)
    return max(1, ceil_log2_fraction(1 / beta))


def theorem9_alpha(
    max_degree: int,
    rank: int,
    epsilon: Fraction,
    gamma: float = 0.001,
) -> Fraction:
    """The alpha of Theorem 9, snapped to a small exact rational.

    With ``X = log Δ / (f * log(f/eps) * log log Δ)``::

        alpha = max(2, X)   if X >= (log Δ)^(gamma/2)
        alpha = 2           otherwise

    ``log(f/eps)`` is clamped below at 1 (it can reach 0 when
    ``f = eps = 1``, where the bound degenerates anyway), and any
    ``Δ < 4`` short-circuits to 2 (``log log Δ <= 0`` otherwise —
    the paper assumes ``Δ >= 3``; base-2 logs make 4 the safe floor).
    """
    if gamma <= 0:
        raise InvalidInstanceError(f"gamma must be positive, got {gamma}")
    if max_degree < 4:
        return Fraction(2)
    effective_rank = max(1, rank)
    log_delta = math.log2(max_degree)
    log_log_delta = math.log2(log_delta)
    log_f_over_eps = max(1.0, math.log2(effective_rank / float(epsilon)))
    x = log_delta / (effective_rank * log_f_over_eps * log_log_delta)
    if x >= log_delta ** (gamma / 2):
        snapped = Fraction(max(2.0, x)).limit_denominator(
            _ALPHA_DENOMINATOR_LIMIT
        )
        return max(Fraction(2), snapped)
    return Fraction(2)


@dataclass(frozen=True)
class AlgorithmConfig:
    """Immutable configuration for one MWHVC run.

    Attributes
    ----------
    epsilon:
        Approximation slack; the guarantee is ``(f + epsilon)``.
    schedule:
        ``"spec"`` — 4 communication rounds per iteration, evaluating
        the raise/stuck condition on fully halved bids exactly as in
        the Section 3.2 pseudocode.  ``"compact"`` — the 2-round
        Appendix B packing (level increments and raise/stuck share a
        message; same-iteration halvings by *other* vertices are not
        yet visible to the raise/stuck test, which is safe because
        stale bids only over-estimate).
    increment_mode:
        ``"multi"`` — Section 3 (duals raised by the full bid, a vertex
        may gain several levels per iteration).  ``"single"`` —
        Appendix C (duals raised by ``bid/2``; at most one level per
        iteration, Corollary 21), required by the ILP simulation.
    alpha_policy / fixed_alpha / gamma:
        How the bid multiplier is chosen: ``"theorem9"`` (global, from
        ``Δ``), ``"fixed"`` (use ``fixed_alpha``), or ``"local"``
        (per-edge from ``Δ(e)``, Theorem 9 remark / Appendix B item 5).
    check_invariants:
        When ``True``, vertex cores verify Claims 1, 2 and 4 (and
        Corollary 21 in single mode) every iteration, raising
        :class:`~repro.exceptions.InvariantViolationError` on failure.
    max_iterations:
        Safety valve for the iteration loop (the algorithm provably
        terminates; this guards implementation bugs).
    ambient_rank / ambient_max_degree:
        Optional *pinned* global parameters.  A connected component
        solved standalone sees only its local ``f`` and ``Δ``, but the
        paper's parameters (``beta``, ``z``, the Theorem 9 alpha) are
        functions of the *global* rank and degree.  Pinning the
        ambient values makes a fragment solve bit-identical to its
        slice of a monolithic solve (the scale is representation-only,
        so only these parameter choices couple components).  The
        fields participate in equality/hashing on purpose: configs key
        the streaming session's micro-batch buffers, and fragments
        pinned to the same ambient instance must batch together.
    """

    epsilon: Fraction = Fraction(1)
    schedule: Schedule = "spec"
    increment_mode: IncrementMode = "multi"
    alpha_policy: AlphaPolicy = "theorem9"
    fixed_alpha: Fraction = Fraction(2)
    gamma: float = 0.001
    check_invariants: bool = False
    max_iterations: int = 1_000_000
    ambient_rank: int | None = None
    ambient_max_degree: int | None = None
    _validated: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "epsilon", parse_epsilon(self.epsilon))
        if self.schedule not in ("spec", "compact"):
            raise InvalidInstanceError(
                f"schedule must be 'spec' or 'compact', got {self.schedule!r}"
            )
        if self.increment_mode not in ("multi", "single"):
            raise InvalidInstanceError(
                "increment_mode must be 'multi' or 'single', "
                f"got {self.increment_mode!r}"
            )
        if self.alpha_policy not in ("theorem9", "fixed", "local"):
            raise InvalidInstanceError(
                "alpha_policy must be 'theorem9', 'fixed' or 'local', "
                f"got {self.alpha_policy!r}"
            )
        fixed = Fraction(self.fixed_alpha)
        if fixed < 2:
            raise InvalidInstanceError(
                f"alpha must be >= 2 (Section 3.1), got {fixed}"
            )
        object.__setattr__(self, "fixed_alpha", fixed)
        if self.gamma <= 0:
            raise InvalidInstanceError(f"gamma must be positive, got {self.gamma}")
        if self.max_iterations < 1:
            raise InvalidInstanceError("max_iterations must be >= 1")
        for name in ("ambient_rank", "ambient_max_degree"):
            value = getattr(self, name)
            if value is None:
                continue
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise InvalidInstanceError(
                    f"{name} must be a non-negative int or None, got {value!r}"
                )
        object.__setattr__(self, "_validated", True)

    def with_epsilon(self, epsilon: Fraction) -> "AlgorithmConfig":
        """A copy of this config with a different epsilon."""
        return replace(self, epsilon=parse_epsilon(epsilon))

    def effective_rank(self, rank: int) -> int:
        """The rank parameter formulas use: local, or the pinned ambient."""
        if self.ambient_rank is None:
            return rank
        return max(rank, self.ambient_rank)

    def effective_max_degree(self, max_degree: int) -> int:
        """The global ``Δ`` formulas use: local, or the pinned ambient."""
        if self.ambient_max_degree is None:
            return max_degree
        return max(max_degree, self.ambient_max_degree)

    def pinned(self, rank: int, max_degree: int) -> "AlgorithmConfig":
        """A copy with the ambient global parameters pinned.

        Solving a connected component under the pinned config is
        bit-identical to that component's slice of a monolithic solve
        of the full instance (see :mod:`repro.core.incremental`).
        """
        return replace(self, ambient_rank=rank, ambient_max_degree=max_degree)

    def beta(self, rank: int) -> Fraction:
        """``beta = eps/(f + eps)`` for an instance of rank ``rank``."""
        return beta_from(self.effective_rank(rank), self.epsilon)

    def z(self, rank: int) -> int:
        """Level cap ``z`` for an instance of rank ``rank``."""
        return level_cap(self.effective_rank(rank), self.epsilon)

    @property
    def rounds_per_iteration(self) -> int:
        """Communication rounds one iteration occupies on the network."""
        return 4 if self.schedule == "spec" else 2


def resolve_alpha(
    config: AlgorithmConfig,
    rank: int,
    max_degree: int,
    local_max_degree: int | None = None,
) -> Fraction:
    """The alpha an edge uses under ``config``.

    ``local_max_degree`` is ``Δ(e)`` and is consulted only by the
    ``"local"`` policy.  Ambient pinning raises ``rank`` and the global
    ``max_degree`` to the pinned values, but ``Δ(e)`` stays local: a
    connected component contains every edge incident to its vertices,
    so component-local per-edge degrees already equal the global ones.
    """
    if config.alpha_policy == "fixed":
        return config.fixed_alpha
    if config.alpha_policy == "local":
        if local_max_degree is None:
            raise InvalidInstanceError(
                "alpha_policy='local' requires the edge's local max degree"
            )
        return theorem9_alpha(
            local_max_degree,
            config.effective_rank(rank),
            config.epsilon,
            config.gamma,
        )
    return theorem9_alpha(
        config.effective_max_degree(max_degree),
        config.effective_rank(rank),
        config.epsilon,
        config.gamma,
    )
