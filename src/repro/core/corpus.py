"""Corpus cataloging: one directory = one persistent instance corpus.

The store layer (:mod:`repro.hypergraph.store`) makes a single packed
arena durable; this module scales that to the ROADMAP's corpus regime.
An :class:`ArenaCatalog` directory holds

* ``manifest.json`` — the corpus index: per-segment container files
  with content hashes, and per-instance records (stable id, size/nnz/
  rank stats, predicted kernel lane, content hash of the canonical
  ``.hg`` text);
* ``segment-NNNNN.arena`` — page-aligned store containers, each
  packing a bounded number of instances.

:func:`pack_corpus` streams inputs (``.hg`` paths, HIF ``.json``
paths, or in-memory hypergraphs) into segments holding at most
``segment_instances`` instances, so packing a million-instance corpus
never materializes more than one segment of hypergraphs at a time.
:func:`solve_corpus` walks the segments the same way — load one
(``mmap`` by default, so the OS pages slabs in on demand), solve it,
yield the results, drop it — which is what makes corpora larger than
RAM solvable.  A corrupt segment surfaces as a typed
:class:`~repro.exceptions.ArenaStoreError`; with ``skip_corrupt=True``
the iterator *reports* the damaged segment in its yielded record and
keeps solving the healthy ones — degraded, never silently wrong.

:meth:`ArenaCatalog.update_instance` re-packs exactly the one segment
containing a mutated instance (manifest rewritten atomically), so
incremental corpus maintenance costs one segment, not one corpus.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.batch import run_fastpath_batch
from repro.core.params import AlgorithmConfig
from repro.core.result import CoverResult
from repro.exceptions import ArenaStoreError, InvalidInstanceError
from repro.hypergraph import io as hg_io
from repro.hypergraph.csr import BatchArena, arena_hypergraphs, pack_arena
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.store import load_arena, save_arena

__all__ = [
    "CATALOG_VERSION",
    "MANIFEST_NAME",
    "ArenaCatalog",
    "InstanceRecord",
    "SegmentRecord",
    "SegmentSolve",
    "pack_corpus",
    "solve_corpus",
]

MANIFEST_NAME = "manifest.json"
_MANIFEST_FORMAT = "repro-arena-corpus"
CATALOG_VERSION = 1

#: Default instances per segment: small enough that one segment's
#: reconstructed hypergraphs stay cheap, large enough that the batch
#: executor amortizes its per-call setup.
DEFAULT_SEGMENT_INSTANCES = 64


@dataclass(frozen=True)
class InstanceRecord:
    """Manifest entry for one corpus instance."""

    id: str
    num_vertices: int
    num_edges: int
    #: Incidence cells (sum of edge ranks) — the nnz of the CSR slab.
    nnz: int
    max_rank: int
    #: Kernel lane :func:`~repro.core.parallel.predicted_lane` expects
    #: under the catalog's default config (advisory: the executor's
    #: spill ladder re-checks at run time).
    lane: str
    #: SHA-256 of the canonical ``.hg`` text — a content address, so
    #: identical instances hash identically across corpora.
    sha256: str


@dataclass(frozen=True)
class SegmentRecord:
    """Manifest entry for one container file."""

    file: str
    sha256: str
    instances: tuple[InstanceRecord, ...]


@dataclass(frozen=True)
class SegmentSolve:
    """One yielded step of :func:`solve_corpus`.

    Either ``results`` holds one :class:`CoverResult` per instance id
    (healthy segment) or ``error`` holds the typed
    :class:`ArenaStoreError` the segment's load raised and ``results``
    is ``None`` (damaged segment, only yielded under
    ``skip_corrupt=True``).
    """

    index: int
    path: str
    ids: tuple[str, ...]
    results: list[CoverResult] | None = None
    error: ArenaStoreError | None = field(default=None, compare=False)


def _instance_record(
    instance_id: str, hypergraph: Hypergraph, config: AlgorithmConfig
) -> InstanceRecord:
    from repro.core.parallel import predicted_lane

    text = hg_io.dumps(hypergraph)
    ranks = [len(edge) for edge in hypergraph.edges]
    return InstanceRecord(
        id=instance_id,
        num_vertices=hypergraph.num_vertices,
        num_edges=hypergraph.num_edges,
        nnz=sum(ranks),
        max_rank=max(ranks, default=0),
        lane=predicted_lane(hypergraph, config),
        sha256=hashlib.sha256(text.encode("utf-8")).hexdigest(),
    )


def _file_sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _segment_name(index: int) -> str:
    return f"segment-{index:05d}.arena"


def _coerce_input(item) -> tuple[str, Hypergraph]:
    """One pack input as ``(id, hypergraph)``.

    Accepted shapes: an explicit ``(id, Hypergraph)`` pair, a bare
    :class:`Hypergraph` (id assigned by position at the call site), or
    a path — ``.hg`` text, or HIF JSON for any other suffix.
    """
    if isinstance(item, tuple) and len(item) == 2:
        instance_id, hypergraph = item
        if not isinstance(hypergraph, Hypergraph):
            raise InvalidInstanceError(
                f"pack input pair {instance_id!r} does not carry a "
                f"Hypergraph"
            )
        return str(instance_id), hypergraph
    if isinstance(item, Hypergraph):
        return "", item
    path = Path(item)
    if path.suffix == ".hg":
        return path.stem, hg_io.load(path)
    return path.stem, hg_io.load_hif(path)


def pack_corpus(
    inputs: Iterable,
    directory,
    *,
    segment_instances: int = DEFAULT_SEGMENT_INSTANCES,
    config: AlgorithmConfig | None = None,
) -> "ArenaCatalog":
    """Stream ``inputs`` into a catalog directory; returns the catalog.

    ``inputs`` yields ``.hg``/HIF paths, ``(id, Hypergraph)`` pairs, or
    bare hypergraphs (ids default to the file stem or the running
    index).  At most ``segment_instances`` instances are resident at a
    time — the corpus as a whole never is.  Duplicate ids are refused
    (the catalog is an index; two instances under one key would make
    lookups ambiguous).  The directory is created if missing; an
    existing manifest is overwritten atomically once every segment is
    durable, so an interrupted pack never leaves a manifest naming
    half-written segments.
    """
    if segment_instances < 1:
        raise ValueError(
            f"segment_instances must be >= 1, got {segment_instances}"
        )
    config = config or AlgorithmConfig()
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    segments: list[SegmentRecord] = []
    seen_ids: set[str] = set()
    buffer: list[tuple[str, Hypergraph]] = []

    def flush() -> None:
        if not buffer:
            return
        index = len(segments)
        name = _segment_name(index)
        arena = pack_arena([hypergraph for _, hypergraph in buffer])
        save_arena(arena, directory / name)
        records = tuple(
            _instance_record(instance_id, hypergraph, config)
            for instance_id, hypergraph in buffer
        )
        segments.append(
            SegmentRecord(
                file=name,
                sha256=_file_sha256(directory / name),
                instances=records,
            )
        )
        buffer.clear()

    for position, item in enumerate(inputs):
        instance_id, hypergraph = _coerce_input(item)
        if not instance_id:
            instance_id = f"instance-{position:06d}"
        if instance_id in seen_ids:
            raise InvalidInstanceError(
                f"duplicate corpus instance id {instance_id!r}"
            )
        seen_ids.add(instance_id)
        buffer.append((instance_id, hypergraph))
        if len(buffer) >= segment_instances:
            flush()
    flush()
    _write_manifest(directory, segments)
    return ArenaCatalog(directory)


def _write_manifest(directory: Path, segments: list[SegmentRecord]) -> None:
    manifest = {
        "format": _MANIFEST_FORMAT,
        "version": CATALOG_VERSION,
        "segments": [
            {
                "file": segment.file,
                "sha256": segment.sha256,
                "instances": [
                    {
                        "id": record.id,
                        "num_vertices": record.num_vertices,
                        "num_edges": record.num_edges,
                        "nnz": record.nnz,
                        "max_rank": record.max_rank,
                        "lane": record.lane,
                        "sha256": record.sha256,
                    }
                    for record in segment.instances
                ],
            }
            for segment in segments
        ],
    }
    temp = directory / (MANIFEST_NAME + ".tmp")
    temp.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    temp.replace(directory / MANIFEST_NAME)


class ArenaCatalog:
    """A packed corpus directory: manifest plus arena segments.

    Opening a catalog reads and validates only the manifest — segment
    containers are opened lazily, one at a time, by
    :meth:`load_segment` / :func:`solve_corpus`.
    """

    def __init__(self, directory):
        self.directory = Path(directory)
        manifest_path = self.directory / MANIFEST_NAME
        try:
            raw = manifest_path.read_text(encoding="utf-8")
        except OSError as error:
            raise ArenaStoreError(
                f"{self.directory} is not a corpus catalog: {error}"
            ) from error
        try:
            manifest = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ArenaStoreError(
                f"{manifest_path} is not valid JSON: {error}"
            ) from error
        if (
            not isinstance(manifest, dict)
            or manifest.get("format") != _MANIFEST_FORMAT
        ):
            raise ArenaStoreError(
                f"{manifest_path} is not a {_MANIFEST_FORMAT} manifest"
            )
        version = manifest.get("version")
        if not isinstance(version, int) or version > CATALOG_VERSION:
            raise ArenaStoreError(
                f"{manifest_path}: manifest version {version!r} is newer "
                f"than this build understands (<= {CATALOG_VERSION})"
            )
        try:
            self.segments: tuple[SegmentRecord, ...] = tuple(
                SegmentRecord(
                    file=str(segment["file"]),
                    sha256=str(segment["sha256"]),
                    instances=tuple(
                        InstanceRecord(
                            id=str(record["id"]),
                            num_vertices=int(record["num_vertices"]),
                            num_edges=int(record["num_edges"]),
                            nnz=int(record["nnz"]),
                            max_rank=int(record["max_rank"]),
                            lane=str(record["lane"]),
                            sha256=str(record["sha256"]),
                        )
                        for record in segment["instances"]
                    ),
                )
                for segment in manifest["segments"]
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ArenaStoreError(
                f"{manifest_path}: malformed manifest: {error!r}"
            ) from error
        self._segment_of_id: dict[str, tuple[int, int]] = {}
        for segment_index, segment in enumerate(self.segments):
            for offset, record in enumerate(segment.instances):
                if record.id in self._segment_of_id:
                    raise ArenaStoreError(
                        f"{manifest_path}: duplicate instance id "
                        f"{record.id!r}"
                    )
                self._segment_of_id[record.id] = (segment_index, offset)

    def __len__(self) -> int:
        return len(self._segment_of_id)

    @property
    def instance_ids(self) -> tuple[str, ...]:
        """Every instance id, in segment order."""
        return tuple(
            record.id
            for segment in self.segments
            for record in segment.instances
        )

    def locate(self, instance_id: str) -> tuple[int, int]:
        """``(segment index, offset within segment)`` of an id."""
        try:
            return self._segment_of_id[instance_id]
        except KeyError:
            raise KeyError(
                f"instance id {instance_id!r} is not in the catalog"
            ) from None

    def record(self, instance_id: str) -> InstanceRecord:
        segment_index, offset = self.locate(instance_id)
        return self.segments[segment_index].instances[offset]

    def segment_path(self, index: int) -> Path:
        return self.directory / self.segments[index].file

    def load_segment(self, index: int, *, mmap: bool = True) -> BatchArena:
        """Load one segment's arena (zero-copy ``mmap`` by default)."""
        return load_arena(self.segment_path(index), mmap=mmap)

    def load_instance(self, instance_id: str) -> Hypergraph:
        """Reconstruct one instance by id (loads only its segment)."""
        segment_index, offset = self.locate(instance_id)
        arena = self.load_segment(segment_index)
        return arena_hypergraphs(arena)[offset]

    def update_instance(
        self,
        instance_id: str,
        hypergraph: Hypergraph,
        *,
        config: AlgorithmConfig | None = None,
    ) -> None:
        """Replace one instance and re-pack only its segment.

        The segment container is rewritten (atomically, via the store
        layer's temp+rename) and the manifest updated to match — the
        other segments' bytes are untouched, so an incremental corpus
        update costs one segment regardless of corpus size.
        """
        config = config or AlgorithmConfig()
        segment_index, offset = self.locate(instance_id)
        segment = self.segments[segment_index]
        arena = load_arena(self.segment_path(segment_index), mmap=False)
        instances = arena_hypergraphs(arena)
        instances[offset] = hypergraph
        save_arena(
            pack_arena(instances), self.segment_path(segment_index)
        )
        records = list(segment.instances)
        records[offset] = _instance_record(instance_id, hypergraph, config)
        updated = SegmentRecord(
            file=segment.file,
            sha256=_file_sha256(self.segment_path(segment_index)),
            instances=tuple(records),
        )
        segments = list(self.segments)
        segments[segment_index] = updated
        _write_manifest(self.directory, segments)
        self.segments = tuple(segments)


def solve_corpus(
    catalog,
    *,
    config: AlgorithmConfig | None = None,
    verify: bool = True,
    mmap: bool = True,
    skip_corrupt: bool = False,
    session=None,
) -> Iterator[SegmentSolve]:
    """Solve a catalog segment by segment, yielding per-segment results.

    ``catalog`` is an :class:`ArenaCatalog` or a directory path.  One
    segment is resident at a time: loaded (``mmap`` by default — the
    lane executors then read the container's pages directly), solved,
    yielded, dropped.  With a :class:`~repro.core.stream.BatchSession`
    as ``session`` the segment is admitted via
    :meth:`~repro.core.stream.BatchSession.submit_arena` (pre-sealed
    shard, file-reference transport to the worker pool); otherwise it
    solves in-process through
    :func:`~repro.core.batch.run_fastpath_batch` — bit-identical
    either way.

    ``skip_corrupt=True`` turns a damaged segment into a yielded
    :class:`SegmentSolve` with ``error`` set (ids from the manifest, no
    results) instead of an exception, and the iteration continues with
    the remaining segments — the catalog degrades, it does not lie.
    """
    if not isinstance(catalog, ArenaCatalog):
        catalog = ArenaCatalog(catalog)
    for index, segment in enumerate(catalog.segments):
        path = catalog.segment_path(index)
        ids = tuple(record.id for record in segment.instances)
        try:
            arena = load_arena(path, mmap=mmap)
        except ArenaStoreError as error:
            if not skip_corrupt:
                raise
            yield SegmentSolve(
                index=index, path=str(path), ids=ids, error=error
            )
            continue
        if len(ids) != arena.num_instances:
            error = ArenaStoreError(
                f"{path}: manifest lists {len(ids)} instances but the "
                f"container packs {arena.num_instances}"
            )
            if not skip_corrupt:
                raise error
            yield SegmentSolve(
                index=index, path=str(path), ids=ids, error=error
            )
            continue
        if session is not None:
            tickets = session.submit_arena(arena, config=config)
            results = [ticket.result() for ticket in tickets]
        else:
            results = run_fastpath_batch(
                arena_hypergraphs(arena),
                config,
                verify=verify,
                arena=arena,
            )
        yield SegmentSolve(
            index=index, path=str(path), ids=ids, results=results
        )
