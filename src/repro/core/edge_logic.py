"""The per-hyperedge automaton of Algorithm MWHVC (Section 3.2, edge side).

:class:`EdgeCore` owns the authoritative bid and dual variable of one
hyperedge and implements the edge steps of an iteration:

* iteration 0 — choose the minimum-normalized-weight member and set
  ``bid0 = w(v*)/(2 |E(v*)|)`` (ties broken by vertex id, so every
  driver is deterministic);
* step 3d (edge half) — apply the members' total halving count;
* step 3f — multiply the bid by alpha iff *all* members said "raise",
  then grow ``delta`` by the bid (or ``bid/2`` in Appendix C mode).

Statistics needed by the Lemma 6/7 ablation (raise counts, halving
counts) are recorded here.

The transition *arithmetic* is exposed as module-level pure functions
(:func:`argmin_member`, :func:`initial_bid`, :func:`unanimous_raise`)
so that every executor — the Fraction-exact cores below and the
scaled-integer fastpath executor (:mod:`repro.core.fastpath`) — applies
the identical formulas.  :func:`initial_bid_scaled` is the fixed-point
twin of :func:`initial_bid`; the differential test harness asserts the
two representations never diverge.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from fractions import Fraction

from repro.exceptions import AlgorithmError

__all__ = [
    "EdgeCore",
    "argmin_member",
    "initial_bid",
    "initial_bid_scaled",
    "unanimous_raise",
]


# ----------------------------------------------------------------------
# Pure transition arithmetic (single source of truth for all executors)
# ----------------------------------------------------------------------


def argmin_member(
    members: Iterable[int],
    weights: Mapping[int, int] | Sequence[int],
    degrees: Mapping[int, int] | Sequence[int],
) -> tuple[int, int, int]:
    """The edge's iteration-0 argmin: minimize ``w(v)/|E(v)|``, ties by id.

    Returns ``(v*, w(v*), |E(v*)|)``.  Comparison uses integer cross
    products, which is exactly the ``(Fraction(w, d), v)`` ordering the
    paper's tie-break prescribes but works for both the Fraction cores
    and the integer fastpath executor.
    """
    best_vertex = -1
    best_weight = 0
    best_degree = 1
    for vertex in members:
        weight = weights[vertex]
        degree = degrees[vertex]
        if best_vertex < 0:
            best_vertex, best_weight, best_degree = vertex, weight, degree
            continue
        left = weight * best_degree
        right = best_weight * degree
        if left < right or (left == right and vertex < best_vertex):
            best_vertex, best_weight, best_degree = vertex, weight, degree
    if best_vertex < 0:
        raise AlgorithmError("argmin_member called with no members")
    return best_vertex, best_weight, best_degree


def initial_bid(min_weight, min_degree: int) -> Fraction:
    """``bid0(e) = w(v*) / (2 |E(v*)|)`` (Section 3.2, iteration 0).

    ``min_weight`` may itself be a rational (fractional vertex
    weights); the Fraction constructor normalizes either way.
    """
    return Fraction(min_weight, 2 * min_degree)


def initial_bid_scaled(min_weight, min_degree: int, scale: int) -> int:
    """:func:`initial_bid` as an integer numerator over ``scale``.

    ``scale`` must be a multiple of ``bid0``'s reduced denominator (the
    fastpath executor builds its global scale as an lcm of those
    denominators, folding in weight denominators when weights are
    fractional).  ``min_weight * scale`` is then integral and exactly
    divisible by ``2 * min_degree``.
    """
    denominator = 2 * min_degree
    quotient, remainder = divmod(min_weight * scale, denominator)
    if remainder:
        raise AlgorithmError(
            f"scale {scale} cannot represent bid0 = "
            f"{min_weight}/{denominator} exactly"
        )
    return int(quotient)


def unanimous_raise(flags: Iterable[bool]) -> bool:
    """Line 3f's condition: the edge raises iff *all* members said raise."""
    return all(flags)


class EdgeCore:
    """State and transitions of one MWHVC hyperedge."""

    __slots__ = (
        "edge_id",
        "members",
        "single_increment",
        "alpha",
        "bid",
        "delta",
        "covered",
        "raise_count",
        "halving_count",
        "argmin_vertex",
    )

    def __init__(
        self,
        edge_id: int,
        members: Iterable[int],
        *,
        single_increment: bool = False,
    ) -> None:
        self.edge_id = edge_id
        self.members = tuple(members)
        if not self.members:
            raise AlgorithmError(f"edge {edge_id} has no members")
        self.single_increment = single_increment
        self.alpha = Fraction(2)
        self.bid = Fraction(0)
        self.delta = Fraction(0)
        self.covered = False
        self.raise_count = 0
        self.halving_count = 0
        self.argmin_vertex: int | None = None

    # ------------------------------------------------------------------
    # Iteration 0
    # ------------------------------------------------------------------

    def initialize(
        self,
        weights: Mapping[int, int],
        degrees: Mapping[int, int],
        alpha: Fraction,
    ) -> tuple[int, int, int]:
        """Set ``bid0`` from the members' weights and degrees.

        Returns ``(v*, w(v*), |E(v*)|)`` — the argmin pair the edge
        reports back to its members so each vertex computes ``bid0``
        locally (Appendix B item 1).
        """
        if self.bid != 0:
            raise AlgorithmError(f"edge {self.edge_id} initialized twice")
        best_vertex, best_weight, best_degree = argmin_member(
            self.members, weights, degrees
        )
        self.alpha = Fraction(alpha)
        if self.alpha < 2:
            raise AlgorithmError(
                f"edge {self.edge_id}: alpha must be >= 2, got {self.alpha}"
            )
        self.bid = initial_bid(best_weight, best_degree)
        self.delta = self.bid
        self.argmin_vertex = best_vertex
        return best_vertex, best_weight, best_degree

    # ------------------------------------------------------------------
    # Step 3d (edge half)
    # ------------------------------------------------------------------

    def apply_halvings(self, total_halvings: int) -> None:
        """Halve the bid once per member level increment this iteration."""
        if total_halvings < 0:
            raise AlgorithmError(
                f"edge {self.edge_id}: negative halving count {total_halvings}"
            )
        if total_halvings:
            self.bid *= Fraction(1, 1 << total_halvings)
            self.halving_count += total_halvings

    # ------------------------------------------------------------------
    # Step 3f
    # ------------------------------------------------------------------

    def decide_raise(self, flags: Iterable[bool]) -> bool:
        """All members said raise?  (Line 3f's condition.)"""
        collected = list(flags)
        if len(collected) != len(self.members):
            raise AlgorithmError(
                f"edge {self.edge_id}: expected {len(self.members)} "
                f"raise/stuck flags, got {len(collected)}"
            )
        return unanimous_raise(collected)

    def apply_raise(self, raised: bool) -> None:
        """Multiply by alpha if raised; always grow the dual by the bid.

        Appendix C (single-increment) mode grows the dual by ``bid/2``.
        """
        if self.covered:
            raise AlgorithmError(
                f"edge {self.edge_id}: raise applied after coverage"
            )
        if raised:
            self.bid *= self.alpha
            self.raise_count += 1
        self.delta += self.bid / 2 if self.single_increment else self.bid

    # ------------------------------------------------------------------
    # Coverage
    # ------------------------------------------------------------------

    def mark_covered(self) -> None:
        """Freeze the dual at its last value; the edge terminates."""
        if self.covered:
            raise AlgorithmError(f"edge {self.edge_id} covered twice")
        self.covered = True
