"""Fast lockstep executor for Algorithm MWHVC.

Runs the same vertex/edge cores as the CONGEST driver, calling their
transition methods in exactly the order the node programs would, but
without message objects or an engine loop — an order of magnitude
faster for parameter sweeps.  Round counts are reproduced *exactly*
(the test suite asserts engine/lockstep equality of covers, duals,
iterations and rounds on randomized instances) using the halting-round
arithmetic of the two schedules:

========================  =============  ================
event (iteration i)        spec schedule  compact schedule
========================  =============  ================
phase A (vertex acts)      4i - 1         2i + 1
edge covered / phase B     4i             2i + 2
childless vertex halts     4i + 1         2i + 3
========================  =============  ================

plus rounds 1–2 for the iteration-0 weight/degree exchange.  The total
round count is the maximum halting round over all nodes, matching the
engine's "run until every node has locally terminated" convention.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.observer import IterationObserver, IterationSnapshot
from repro.core.params import AlgorithmConfig, theorem9_alpha
from repro.core.result import CoverResult
from repro.core.runner import assemble_result, build_cores
from repro.exceptions import RoundLimitExceededError
from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "run_lockstep",
    "INIT_EXCHANGE_ROUNDS",
    "phase_a_round",
    "edge_cover_round",
    "childless_halt_round",
    "empty_instance_rounds",
]

#: Rounds 1-2: the iteration-0 weight/degree exchange.
INIT_EXCHANGE_ROUNDS = 2


def phase_a_round(iteration: int, *, spec: bool) -> int:
    """Round in which iteration ``i``'s phase A (vertex acts) lands.

    ``4i - 1`` on the spec schedule, ``2i + 1`` on the compact one (see
    the event table in the module docstring).  Shared by the lockstep
    and fastpath executors so their round accounting cannot diverge.
    """
    return 4 * iteration - 1 if spec else 2 * iteration + 1


def edge_cover_round(iteration: int, *, spec: bool) -> int:
    """Round in which an edge covered in iteration ``i`` halts."""
    return phase_a_round(iteration, spec=spec) + 1


def childless_halt_round(iteration: int, *, spec: bool) -> int:
    """Round in which a vertex made childless in iteration ``i`` halts."""
    return phase_a_round(iteration, spec=spec) + 2


def empty_instance_rounds(num_vertices: int) -> int:
    """Rounds for an edgeless instance: one wake-up round, or zero."""
    return 1 if num_vertices > 0 else 0


def run_lockstep(
    hypergraph: Hypergraph,
    config: AlgorithmConfig | None = None,
    *,
    verify: bool = True,
    observer: IterationObserver | None = None,
) -> CoverResult:
    """Execute Algorithm MWHVC without the message-passing engine.

    ``observer`` (if given) receives one
    :class:`~repro.core.observer.IterationSnapshot` per iteration —
    convergence diagnostics at O(n + m) extra cost per iteration.
    """
    config = config or AlgorithmConfig()
    vertex_cores, edge_cores, global_alpha = build_cores(hypergraph, config)
    num_vertices = hypergraph.num_vertices
    num_edges = hypergraph.num_edges
    rank = hypergraph.rank

    if num_edges == 0:
        rounds = empty_instance_rounds(num_vertices)
        return assemble_result(
            hypergraph, config, vertex_cores, edge_cores,
            iterations=0, rounds=rounds, metrics=None, verify=verify,
        )

    # ------------------------------------------------------------------
    # Iteration 0 (rounds 1-2): weight/degree exchange, initial bids.
    # ------------------------------------------------------------------
    for edge_id, edge_core in enumerate(edge_cores):
        members = hypergraph.edge(edge_id)
        weights = {vertex: hypergraph.weight(vertex) for vertex in members}
        degrees = {vertex: hypergraph.degree(vertex) for vertex in members}
        if global_alpha is not None:
            alpha = global_alpha
        else:
            alpha = theorem9_alpha(
                max(degrees.values()),
                config.effective_rank(rank),
                config.epsilon,
                config.gamma,
            )
        _, min_weight, min_degree = edge_core.initialize(
            weights, degrees, alpha
        )
        for vertex in members:
            vertex_cores[vertex].record_initial_bid(
                edge_id, min_weight, min_degree, alpha
            )

    live_edges: set[int] = set(range(num_edges))
    live_vertices: set[int] = {
        vertex for vertex in range(num_vertices)
        if not vertex_cores[vertex].terminated
    }
    spec = config.schedule == "spec"
    iteration = 0
    max_halt_round = INIT_EXCHANGE_ROUNDS
    cover_size = 0
    cover_weight = 0

    while live_edges:
        iteration += 1
        if iteration > config.max_iterations:
            raise RoundLimitExceededError(
                f"no termination after {config.max_iterations} iterations; "
                f"{len(live_edges)} edges uncovered"
            )
        round_a = phase_a_round(iteration, spec=spec)

        # Phase A: tightness test, then level increments (compact mode
        # also fixes the raise/stuck flag here, on own-halved bids).
        joiners: list[int] = []
        increments: dict[int, int] = {}
        compact_flags: dict[int, bool] = {}
        for vertex in sorted(live_vertices):
            core = vertex_cores[vertex]
            if core.is_tight():
                core.join_cover()
                joiners.append(vertex)
            else:
                increments[vertex] = core.level_increments()
                if not spec:
                    compact_flags[vertex] = core.wants_raise()

        newly_covered: set[int] = set()
        for vertex in joiners:
            for edge_id in vertex_cores[vertex].edges:
                if edge_id in live_edges:
                    newly_covered.add(edge_id)
        for edge_id in newly_covered:
            edge_cores[edge_id].mark_covered()
            max_halt_round = max(max_halt_round, round_a + 1)
        if joiners:
            max_halt_round = max(max_halt_round, round_a)
            live_vertices.difference_update(joiners)
        live_edges.difference_update(newly_covered)
        joiner_set = set(joiners)

        raised_count = 0
        if spec:
            # Phase B/C: vertices learn coverage *before* flags.
            terminated_vertices = _apply_vertex_coverage(
                hypergraph, vertex_cores, newly_covered, joiner_set
            )
            if terminated_vertices:
                max_halt_round = max(max_halt_round, round_a + 2)
                live_vertices.difference_update(terminated_vertices)
            # Halvings for surviving edges, then flags on exact bids.
            for edge_id in live_edges:
                edge_core = edge_cores[edge_id]
                total = sum(
                    increments[vertex] for vertex in edge_core.members
                )
                edge_core.apply_halvings(total)
                for vertex in edge_core.members:
                    vertex_cores[vertex].apply_extra_halvings(
                        edge_id, total - increments[vertex]
                    )
            flags = {
                vertex: vertex_cores[vertex].wants_raise()
                for vertex in sorted(live_vertices)
            }
            # Phase D: raise decisions and dual growth.
            for edge_id in live_edges:
                edge_core = edge_cores[edge_id]
                raised = edge_core.decide_raise(
                    [flags[vertex] for vertex in edge_core.members]
                )
                raised_count += raised
                edge_core.apply_raise(raised)
                for vertex in edge_core.members:
                    vertex_cores[vertex].apply_raise(edge_id, raised)
        else:
            # Compact: flags were fixed in phase A; edges apply
            # halvings + raise in one step, vertices catch up, and only
            # then process coverage (they learn it a round later).
            for edge_id in live_edges:
                edge_core = edge_cores[edge_id]
                total = sum(
                    increments[vertex] for vertex in edge_core.members
                )
                edge_core.apply_halvings(total)
                raised = edge_core.decide_raise(
                    [compact_flags[vertex] for vertex in edge_core.members]
                )
                raised_count += raised
                edge_core.apply_raise(raised)
                for vertex in edge_core.members:
                    vertex_core = vertex_cores[vertex]
                    vertex_core.apply_extra_halvings(
                        edge_id, total - increments[vertex]
                    )
                    vertex_core.apply_raise(edge_id, raised)
            terminated_vertices = _apply_vertex_coverage(
                hypergraph, vertex_cores, newly_covered, joiner_set
            )
            if terminated_vertices:
                max_halt_round = max(max_halt_round, round_a + 2)
                live_vertices.difference_update(terminated_vertices)

        if config.check_invariants:
            for vertex in live_vertices:
                vertex_cores[vertex].verify_post_iteration()

        if observer is not None:
            cover_size += len(joiners)
            cover_weight += sum(
                hypergraph.weight(vertex) for vertex in joiners
            )
            observer.on_iteration(
                IterationSnapshot(
                    iteration=iteration,
                    live_edges=len(live_edges),
                    live_vertices=len(live_vertices),
                    cover_size=cover_size,
                    cover_weight=cover_weight,
                    dual_total=sum(
                        (core.delta for core in edge_cores), Fraction(0)
                    ),
                    max_level=max(
                        (core.level for core in vertex_cores), default=0
                    ),
                    joins_this_iteration=len(joiners),
                    edges_covered_this_iteration=len(newly_covered),
                    raised_edges_this_iteration=raised_count,
                )
            )

    return assemble_result(
        hypergraph,
        config,
        vertex_cores,
        edge_cores,
        iterations=iteration,
        rounds=max_halt_round,
        metrics=None,
        verify=verify,
    )


def _apply_vertex_coverage(
    hypergraph: Hypergraph,
    vertex_cores: list,
    newly_covered: set[int],
    joiner_set: set[int],
) -> list[int]:
    """Tell non-joining members their edges are covered; return the
    vertices that became childless (terminated without joining)."""
    terminated: list[int] = []
    for edge_id in sorted(newly_covered):
        for vertex in hypergraph.edge(edge_id):
            if vertex in joiner_set:
                continue
            core = vertex_cores[vertex]
            was_terminated = core.terminated
            core.edge_covered(edge_id)
            if core.terminated and not was_terminated:
                terminated.append(vertex)
    return terminated
