"""Persistent on-disk containers for packed CSR arenas.

A :class:`~repro.hypergraph.csr.BatchArena` is already a set of flat
integer slabs — the same representation that crosses process
boundaries through shared memory.  This module gives those slabs a
durable, versioned, integrity-checked on-disk form so a corpus packs
once and every later process start skips the ``.hg`` parse-and-pack
path entirely:

* :func:`save_arena` writes one **container file**: the PR 9
  ``[magic, payload length, crc32]`` integrity framing over a small
  int64 header, followed by one section per structural slab
  (``vertex_offset``, ``edge_offset``, membership ``lengths`` /
  ``starts`` / ``cells``, the instance maps, and the weights), each
  section **page-aligned** and carrying its own CRC32 in the header's
  section table;
* :func:`load_arena` validates the framing and rebuilds the arena.
  With ``mmap=True`` (and numpy present) the structural sections come
  back as ``int64`` **views over the mapped buffer** — zero copies,
  which :class:`repro.core.kernels.LaneRun` and
  :func:`repro.core.batch.run_fastpath_batch(arena=...)` consume
  directly (their ``asarray`` conversions are no-ops on int64 arrays),
  so cold-start cost is the page faults the solve actually touches.
  The OS pages sections in and out on demand, which is what makes
  corpora bigger than RAM solvable one segment at a time
  (:mod:`repro.core.corpus`).

Every way a file can be wrong — missing or mangled magic, a version
from the future, a truncated tail, a bit-flipped section, structurally
inconsistent slabs — raises a typed
:class:`~repro.exceptions.ArenaStoreError` (under
:class:`~repro.exceptions.TransportError`, so the serving stack's
recovery paths treat a damaged store exactly like a damaged shared
memory segment: a recoverable fault, never silent corruption).

Weights are exact rationals and have no fixed-width form; the weights
section therefore has two encodings, chosen per file: ``int64`` when
every weight is a machine-width int (the overwhelmingly common case),
else the canonical ``str(Fraction)``/``str(int)`` text tokens of the
``.hg`` format — both round-trip **byte-identically** through
save → load → save, which the hypothesis soak pins.

Only same-machine byte order is supported (native ``int64``, like the
shared-memory transport): a store directory is a local corpus cache,
not a network interchange format — that is what the HIF import/export
in :mod:`repro.hypergraph.io` is for.
"""

from __future__ import annotations

import os
import zlib
from array import array
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path

from repro.exceptions import ArenaStoreError
from repro.hypergraph.csr import BatchArena, CSRLayout, _starts_of

try:  # pragma: no cover - exercised via both CI matrix legs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "STORE_VERSION",
    "PAGE_ALIGN",
    "ArenaSource",
    "save_arena",
    "load_arena",
]

#: ``b"ARSTORE"`` as a little-endian int64: the first header word of
#: every container file.  Distinct from the shared-memory transport's
#: ``ARNA`` magic — a transport buffer is not a container and vice
#: versa, and each decoder rejects the other's framing loudly.
_STORE_MAGIC = int.from_bytes(b"ARSTORE\x00", "little")

#: Container format version this build writes and the newest it reads.
#: A file stamped with a *larger* version is refused (typed error, not
#: a guess): forward-compatible parsing of an unknown layout is exactly
#: how silent corruption happens.
STORE_VERSION = 1

#: Section payloads start on page boundaries.  4096 divides every
#: common page size in use; alignment means an ``mmap`` view of a
#: section is itself page-aligned, so the kernel can fault, prefetch
#: and evict sections independently when a corpus exceeds RAM.
PAGE_ALIGN = 4096

#: The framing header words (shared shape with the PR 9 arena
#: transport): ``[magic, header_payload_bytes, crc32(header_payload)]``.
_FRAME_WORDS = 3
_FRAME_BYTES = _FRAME_WORDS * 8

#: Section kinds, in on-disk order.  The header's section table maps
#: ``kind -> (offset, byte length, crc32)``.
_SEC_VERTEX_OFFSET = 1
_SEC_EDGE_OFFSET = 2
_SEC_LENGTHS = 3
_SEC_STARTS = 4
_SEC_CELLS = 5
_SEC_INSTANCE_OF_VERTEX = 6
_SEC_INSTANCE_OF_EDGE = 7
_SEC_WEIGHTS = 8
_SECTION_ORDER = (
    _SEC_VERTEX_OFFSET,
    _SEC_EDGE_OFFSET,
    _SEC_LENGTHS,
    _SEC_STARTS,
    _SEC_CELLS,
    _SEC_INSTANCE_OF_VERTEX,
    _SEC_INSTANCE_OF_EDGE,
    _SEC_WEIGHTS,
)

#: Weights-section encodings.
_WEIGHTS_INT64 = 0
_WEIGHTS_TEXT = 1

_INT64_MAX = 2**63 - 1


@dataclass(frozen=True)
class ArenaSource:
    """Provenance of a loaded arena: the container file it came from.

    Attached as :attr:`BatchArena.source` by :func:`load_arena`.  The
    multiprocess transport (:func:`repro.core.parallel.ship_arena`)
    uses ``path`` to ship the arena to workers **by file reference**
    instead of copying the slabs into ``/dev/shm`` — workers on the
    same filesystem re-open and re-validate the container themselves.
    ``buffer`` holds the mapped buffer of an ``mmap=True`` load (kept
    referenced so the views stay valid; ``None`` for copying loads),
    and tests use it to pin that the structural arrays really are
    views over the map.
    """

    path: str
    mmapped: bool = False
    buffer: object | None = field(default=None, compare=False, repr=False)
    #: ``True`` when the container's weights section was the int64
    #: binary encoding — every decoded weight is then a plain ``int``,
    #: and reconstruction can skip the per-weight integrality rescan.
    #: ``None`` means "unknown" (text encoding; weights may hold big
    #: ints or Fractions).
    weights_all_int: bool | None = None


def _slab_bytes(values) -> bytes:
    """A structural slab (tuple / list / int64 ndarray) as raw int64."""
    if _np is not None and isinstance(values, _np.ndarray):
        return values.astype(_np.int64, copy=False).tobytes()
    try:
        return array("q", values).tobytes()
    except OverflowError as error:  # structural ids always fit int64
        raise ArenaStoreError(
            f"arena slab value outside int64: {error}"
        ) from error


def _encode_weights(weights) -> tuple[int, bytes]:
    """``(encoding kind, section bytes)`` for the weights tuple."""
    if all(
        type(weight) is int and 0 < weight <= _INT64_MAX
        for weight in weights
    ):
        return _WEIGHTS_INT64, _slab_bytes(weights)
    # Exact text tokens: ``str(int)`` / ``str(Fraction)`` ("num/den"),
    # the same canonical forms the ``.hg`` format uses — big ints and
    # rationals round-trip exactly, and re-encoding a decoded weights
    # tuple reproduces these bytes verbatim (byte-identical resave).
    return _WEIGHTS_TEXT, " ".join(
        str(weight) for weight in weights
    ).encode("utf-8")


def _decode_weights(kind: int, raw: bytes, expected: int):
    if kind == _WEIGHTS_INT64:
        if len(raw) != expected * 8:
            raise ArenaStoreError(
                f"weights section holds {len(raw)} bytes, expected "
                f"{expected * 8} for {expected} int64 weights"
            )
        if _np is not None:
            return tuple(_np.frombuffer(raw, dtype=_np.int64).tolist())
        decoded = array("q")
        decoded.frombytes(raw)
        return tuple(decoded)
    if kind != _WEIGHTS_TEXT:
        raise ArenaStoreError(f"unknown weights encoding {kind}")
    try:
        text = bytes(raw).decode("utf-8")
    except UnicodeDecodeError as error:
        raise ArenaStoreError(
            f"weights section is not valid UTF-8: {error}"
        ) from error
    tokens = text.split()
    if len(tokens) != expected:
        raise ArenaStoreError(
            f"weights section holds {len(tokens)} tokens, expected "
            f"{expected}"
        )
    weights: list[int | Fraction] = []
    for token in tokens:
        try:
            weights.append(
                Fraction(token) if "/" in token else int(token)
            )
        except (ValueError, ZeroDivisionError) as error:
            raise ArenaStoreError(
                f"malformed weight token {token!r} in weights section"
            ) from error
    return tuple(weights)


def save_arena(arena: BatchArena, path) -> int:
    """Write ``arena`` to ``path`` as one container file.

    Returns the number of bytes written.  The write is atomic (temp
    file + rename in the destination directory), so a crashed or
    interrupted save can never leave a half-written container under
    the final name — a partially copied one fails its CRCs instead.
    The output is deterministic: saving an equal arena produces
    byte-identical files.
    """
    path = Path(path)
    section_payloads: list[tuple[int, bytes]] = []
    for kind in _SECTION_ORDER:
        if kind == _SEC_VERTEX_OFFSET:
            raw = _slab_bytes(arena.vertex_offset)
        elif kind == _SEC_EDGE_OFFSET:
            raw = _slab_bytes(arena.edge_offset)
        elif kind == _SEC_LENGTHS:
            raw = _slab_bytes(arena.membership.lengths)
        elif kind == _SEC_STARTS:
            raw = _slab_bytes(arena.membership.starts)
        elif kind == _SEC_CELLS:
            raw = _slab_bytes(arena.membership.cells)
        elif kind == _SEC_INSTANCE_OF_VERTEX:
            raw = _slab_bytes(arena.instance_of_vertex)
        elif kind == _SEC_INSTANCE_OF_EDGE:
            raw = _slab_bytes(arena.instance_of_edge)
        else:
            weights_kind, raw = _encode_weights(arena.weights)
        section_payloads.append((kind, raw))

    # Lay the sections out page-aligned after the (yet unsized) header.
    # The header size depends only on the section count, so size it
    # first, then assign aligned offsets.
    header_payload_words = 7 + 4 * len(section_payloads)
    header_bytes = _FRAME_BYTES + header_payload_words * 8
    table: list[tuple[int, int, int, int]] = []
    cursor = _align_up(header_bytes)
    for kind, raw in section_payloads:
        table.append((kind, cursor, len(raw), zlib.crc32(raw)))
        cursor = _align_up(cursor + len(raw))

    total_cells = (
        int(arena.membership.lengths[-1]) + int(arena.membership.starts[-1])
        if arena.total_edges
        else 0
    )
    header_payload = array(
        "q",
        [
            STORE_VERSION,
            arena.num_instances,
            arena.total_vertices,
            arena.total_edges,
            total_cells,
            weights_kind,
            len(section_payloads),
        ],
    )
    for entry in table:
        header_payload.extend(entry)
    payload_bytes = header_payload.tobytes()
    frame = array(
        "q", [_STORE_MAGIC, len(payload_bytes), zlib.crc32(payload_bytes)]
    )

    temp = path.with_name(path.name + ".tmp")
    with open(temp, "wb") as handle:
        handle.write(frame.tobytes())
        handle.write(payload_bytes)
        position = header_bytes
        for (kind, offset, length, _), (_, raw) in zip(
            table, section_payloads
        ):
            handle.write(b"\x00" * (offset - position))
            handle.write(raw)
            position = offset + length
        handle.flush()
        os.fsync(handle.fileno())
        written = handle.tell()
    os.replace(temp, path)
    return written


def _align_up(offset: int) -> int:
    return (offset + PAGE_ALIGN - 1) // PAGE_ALIGN * PAGE_ALIGN


def _read_int64(buffer, offset: int, count: int):
    """``count`` native int64 words at ``offset`` (numpy view or array)."""
    if _np is not None:
        return _np.frombuffer(
            buffer, dtype=_np.int64, count=count, offset=offset
        )
    words = array("q")
    words.frombytes(bytes(buffer[offset : offset + count * 8]))
    return words


def load_arena(path, *, mmap: bool = False, verify: bool = True) -> BatchArena:
    """Rebuild a :class:`BatchArena` from a :func:`save_arena` container.

    ``mmap=True`` maps the file read-only and returns the structural
    slabs (membership ``lengths``/``starts``/``cells`` and the instance
    maps) as ``int64`` numpy views **over the mapped buffer** — no
    copies; the kernel-lane executors consume them as-is and the OS
    pages the file in on demand.  Without numpy the flag degrades to an
    ordinary read (tuples; documented, tested, still exact).

    ``verify=True`` (the default) checks every section's CRC32 and the
    structural invariants (offsets monotone, lengths/starts consistent,
    cells in range) before any view escapes, so a damaged file raises
    a typed :class:`~repro.exceptions.ArenaStoreError` — never a wrong
    answer, never an out-of-bounds read inside a kernel sweep.  CRC
    verification of a mapped file touches each page once but copies
    nothing.

    Raises :class:`~repro.exceptions.ArenaStoreError` on any integrity
    failure and ``OSError`` if the file cannot be opened at all.
    """
    path = Path(path)
    mapped = None
    if mmap and _np is not None:
        import mmap as _mmap

        with open(path, "rb") as handle:
            size = os.fstat(handle.fileno()).st_size
            if size == 0:
                raise ArenaStoreError(f"{path} is empty, not a container")
            mapped = _mmap.mmap(
                handle.fileno(), 0, access=_mmap.ACCESS_READ
            )
        buffer = mapped
    else:
        buffer = Path(path).read_bytes()
        size = len(buffer)
    try:
        return _decode_container(path, buffer, size, mapped, verify)
    except ArenaStoreError:
        if mapped is not None:
            try:
                mapped.close()
            except BufferError:  # a view escaped before the failure;
                pass  # the map is freed when the views are collected
        raise


def _decode_container(path, buffer, size, mapped, verify) -> BatchArena:
    # A memoryview slice of an mmap is zero-copy (a bare mmap slice is
    # not): CRC sweeps and frombuffer reads go through the view so
    # verification touches pages without duplicating them.
    buffer = memoryview(buffer)
    if size < _FRAME_BYTES:
        raise ArenaStoreError(
            f"{path}: {size} bytes is shorter than the "
            f"{_FRAME_BYTES}-byte container frame"
        )
    frame = array("q")
    frame.frombytes(bytes(buffer[:_FRAME_BYTES]))
    magic, payload_length, checksum = frame
    if magic != _STORE_MAGIC:
        raise ArenaStoreError(
            f"{path}: not an arena container (magic {magic:#x} != "
            f"{_STORE_MAGIC:#x})"
        )
    if payload_length < 0 or _FRAME_BYTES + payload_length > size:
        raise ArenaStoreError(
            f"{path}: truncated container header (frame claims "
            f"{payload_length} header bytes, file has "
            f"{size - _FRAME_BYTES} after the frame)"
        )
    payload_raw = bytes(
        buffer[_FRAME_BYTES : _FRAME_BYTES + payload_length]
    )
    if zlib.crc32(payload_raw) != checksum:
        raise ArenaStoreError(
            f"{path}: container header failed its checksum"
        )
    header = array("q")
    header.frombytes(payload_raw)
    if len(header) < 7:
        raise ArenaStoreError(f"{path}: container header too short")
    version = header[0]
    if version > STORE_VERSION:
        raise ArenaStoreError(
            f"{path}: container version {version} is newer than this "
            f"build understands (<= {STORE_VERSION}); refusing to guess "
            f"at its layout"
        )
    if version < 1:
        raise ArenaStoreError(
            f"{path}: invalid container version {version}"
        )
    (
        num_instances,
        total_vertices,
        total_edges,
        total_cells,
        weights_kind,
        num_sections,
    ) = header[1:7]
    if num_instances < 0 or min(total_vertices, total_edges, total_cells) < 0:
        raise ArenaStoreError(f"{path}: negative sizes in header")
    if len(header) != 7 + 4 * num_sections:
        raise ArenaStoreError(
            f"{path}: header claims {num_sections} sections but the "
            f"table holds {(len(header) - 7) // 4}"
        )
    table: dict[int, tuple[int, int, int]] = {}
    for position in range(num_sections):
        kind, offset, length, crc = header[
            7 + 4 * position : 11 + 4 * position
        ]
        if kind in table:
            raise ArenaStoreError(
                f"{path}: duplicate section kind {kind}"
            )
        if offset < _FRAME_BYTES or length < 0 or offset + length > size:
            raise ArenaStoreError(
                f"{path}: section {kind} [{offset}, {offset + length}) "
                f"falls outside the {size}-byte file — truncated or "
                f"rewritten container"
            )
        if verify and zlib.crc32(buffer[offset : offset + length]) != crc:
            raise ArenaStoreError(
                f"{path}: section {kind} failed its checksum — the "
                f"container was damaged on disk"
            )
        table[kind] = (offset, length, crc)
    for kind in _SECTION_ORDER:
        if kind not in table:
            raise ArenaStoreError(f"{path}: missing section {kind}")

    def int64_section(kind: int, expected_words: int):
        offset, length, _ = table[kind]
        if length != expected_words * 8:
            raise ArenaStoreError(
                f"{path}: section {kind} holds {length} bytes, "
                f"expected {expected_words * 8}"
            )
        return _read_int64(buffer, offset, expected_words)

    vertex_offset = tuple(
        _to_int_list(int64_section(_SEC_VERTEX_OFFSET, num_instances + 1))
    )
    edge_offset = tuple(
        _to_int_list(int64_section(_SEC_EDGE_OFFSET, num_instances + 1))
    )
    lengths = int64_section(_SEC_LENGTHS, total_edges)
    starts = int64_section(_SEC_STARTS, total_edges)
    cells = int64_section(_SEC_CELLS, total_cells)
    instance_of_vertex = int64_section(
        _SEC_INSTANCE_OF_VERTEX, total_vertices
    )
    instance_of_edge = int64_section(_SEC_INSTANCE_OF_EDGE, total_edges)
    weights_offset, weights_length, _ = table[_SEC_WEIGHTS]
    weights = _decode_weights(
        weights_kind,
        bytes(buffer[weights_offset : weights_offset + weights_length]),
        total_vertices,
    )
    if verify:
        _check_structure(
            path,
            vertex_offset,
            edge_offset,
            lengths,
            starts,
            cells,
            total_vertices,
            total_cells,
        )
    if _np is None or not (mapped is not None):
        # Copying load (or numpy-less build): plain tuples, the same
        # shape pack_arena produces.
        lengths = tuple(_to_int_list(lengths))
        starts = tuple(_to_int_list(starts))
        cells = tuple(_to_int_list(cells))
        instance_of_vertex = tuple(_to_int_list(instance_of_vertex))
        instance_of_edge = tuple(_to_int_list(instance_of_edge))
    return BatchArena(
        num_instances=int(num_instances),
        vertex_offset=vertex_offset,
        edge_offset=edge_offset,
        weights=weights,
        membership=CSRLayout(lengths=lengths, starts=starts, cells=cells),
        instance_of_vertex=instance_of_vertex,
        instance_of_edge=instance_of_edge,
        source=ArenaSource(
            path=str(path),
            mmapped=mapped is not None,
            buffer=mapped,
            weights_all_int=(
                True if weights_kind == _WEIGHTS_INT64 else None
            ),
        ),
    )


def _to_int_list(words) -> list[int]:
    """Native words as a list of plain Python ints."""
    if _np is not None and isinstance(words, _np.ndarray):
        return words.tolist()
    return list(words)


def _check_structure(
    path,
    vertex_offset,
    edge_offset,
    lengths,
    starts,
    cells,
    total_vertices,
    total_cells,
) -> None:
    """Structural invariants a CRC cannot cover (wrong-but-consistent
    bytes): offset tables monotone from 0, ``starts`` the exclusive
    prefix sum of ``lengths`` summing to the cell count, and every
    membership cell a valid global vertex id.  A file violating any of
    these would index out of bounds inside the kernel sweeps."""
    for name, offsets in (
        ("vertex_offset", vertex_offset),
        ("edge_offset", edge_offset),
    ):
        if offsets[0] != 0 or any(
            later < earlier
            for earlier, later in zip(offsets, offsets[1:])
        ):
            raise ArenaStoreError(
                f"{path}: {name} table is not a monotone prefix from 0"
            )
    if vertex_offset[-1] != total_vertices:
        raise ArenaStoreError(
            f"{path}: vertex_offset ends at {vertex_offset[-1]}, header "
            f"claims {total_vertices} vertices"
        )
    if _np is not None and isinstance(lengths, _np.ndarray):
        expected_starts = _np.zeros(len(lengths), dtype=_np.int64)
        _np.cumsum(lengths[:-1], out=expected_starts[1:])
        consistent = bool(
            _np.array_equal(starts, expected_starts)
            and int(lengths.sum()) == total_cells
        )
        cells_ok = len(cells) == 0 or bool(
            int(cells.min()) >= 0 and int(cells.max()) < total_vertices
        )
    else:
        expected = _starts_of(tuple(lengths))
        consistent = (
            tuple(starts) == expected and sum(lengths) == total_cells
        )
        cells_ok = all(
            0 <= cell < total_vertices for cell in cells
        )
    if not consistent:
        raise ArenaStoreError(
            f"{path}: membership lengths/starts are inconsistent with "
            f"the header's cell count"
        )
    if not cells_ok:
        raise ArenaStoreError(
            f"{path}: membership cells reference vertices outside "
            f"0..{total_vertices - 1}"
        )
