"""CSR (compressed sparse row) layouts for hypergraphs and batches.

The vectorized executors view a hypergraph as two flat ragged arrays:
the *membership* layout (one segment per hyperedge listing its member
vertices) and the *incidence* layout (one segment per vertex listing
its incident hyperedges).  Both are plain ``(lengths, starts, cells)``
triples — pure Python tuples, so the helpers work with or without
numpy; callers that vectorize convert the tuples to ``int64`` arrays
once and run ``reduceat`` kernels over the segments.

:func:`pack_arena` concatenates the layouts of many independent
instances into one shared **arena**: vertex and edge ids are offset
into disjoint global ranges, so a single structural kernel sweep (one
``reduceat`` per quantity) advances every instance simultaneously while
per-instance offset tables keep results separable.  This is the packing
behind :func:`repro.core.batch.run_fastpath_batch`.

For the multiprocess executor (:mod:`repro.core.parallel`) an arena's
structure round-trips through one flat native-``int64`` buffer:
:func:`serialize_arena` / :func:`deserialize_arena` move a shard's
packed CSR across the process boundary (via ``shared_memory`` or, as a
fallback, an ordinary pickled payload) without serializing Python
object graphs, and :func:`arena_hypergraphs` reconstructs the packed
instances — the exact inverse of :func:`pack_arena` — on the worker
side.  Vertex weights travel separately: they may be arbitrary exact
rationals, which have no fixed-width representation.
"""

from __future__ import annotations

import zlib
from array import array
from collections.abc import Sequence
from dataclasses import dataclass, field
from fractions import Fraction

from repro.exceptions import ArenaTransportError, InvalidInstanceError
from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "CSRLayout",
    "edge_membership_csr",
    "vertex_incidence_csr",
    "BatchArena",
    "pack_arena",
    "patch_arena",
    "slice_arena",
    "arena_incidence",
    "serialize_arena",
    "deserialize_arena",
    "arena_hypergraphs",
]


@dataclass(frozen=True, slots=True)
class CSRLayout:
    """One ragged array: ``cells[starts[i] : starts[i] + lengths[i]]``
    is segment ``i``.  ``starts`` is the exclusive prefix sum of
    ``lengths``; ``len(cells) == sum(lengths)``."""

    lengths: tuple[int, ...]
    starts: tuple[int, ...]
    cells: tuple[int, ...]

    @property
    def num_segments(self) -> int:
        return len(self.lengths)

    def segment(self, index: int) -> tuple[int, ...]:
        """The cells of segment ``index`` (for tests and debugging)."""
        start = self.starts[index]
        return self.cells[start : start + self.lengths[index]]


def _starts_of(lengths: Sequence[int]) -> tuple[int, ...]:
    starts = []
    position = 0
    for length in lengths:
        starts.append(position)
        position += length
    return tuple(starts)


def _layout(segments: Sequence[Sequence[int]]) -> CSRLayout:
    lengths = tuple(len(segment) for segment in segments)
    cells = tuple(cell for segment in segments for cell in segment)
    return CSRLayout(lengths=lengths, starts=_starts_of(lengths), cells=cells)


def edge_membership_csr(
    edges: Sequence[Sequence[int]],
) -> CSRLayout:
    """Edge -> member-vertex layout (one segment per hyperedge)."""
    return _layout(edges)


def vertex_incidence_csr(
    num_vertices: int, edges: Sequence[Sequence[int]]
) -> CSRLayout:
    """Vertex -> incident-edge layout (one segment per vertex)."""
    incidence: list[list[int]] = [[] for _ in range(num_vertices)]
    for edge_id, members in enumerate(edges):
        for vertex in members:
            incidence[vertex].append(edge_id)
    return _layout(incidence)


@dataclass(frozen=True, slots=True)
class BatchArena:
    """K independent instances packed into one shared id space.

    Vertex ``v`` of instance ``k`` has global id
    ``vertex_offset[k] + v``; edge ``e`` has global id
    ``edge_offset[k] + e``.  ``membership`` is the concatenated
    edge-to-member CSR layout over those global ids, so one structural
    kernel call covers the whole batch (the transposed incidence
    layout is derived from it — vectorized consumers get it via a
    stable argsort of the membership cells).  The offset tables
    (length ``K + 1``, ending in the totals) slice any global array
    back into per-instance views.
    """

    num_instances: int
    vertex_offset: tuple[int, ...]
    edge_offset: tuple[int, ...]
    weights: tuple[int | Fraction, ...]
    membership: CSRLayout
    instance_of_vertex: tuple[int, ...]
    instance_of_edge: tuple[int, ...]
    #: Provenance annotation for arenas materialized from a persistent
    #: container (:func:`repro.hypergraph.store.load_arena`): carries
    #: the backing file path (and, for mmap loads, the mapped buffer
    #: keeping the views alive).  ``None`` for arenas packed in memory.
    #: Excluded from equality — a loaded arena must compare equal to
    #: the freshly packed arena it round-tripped from — and consulted
    #: by the multiprocess transport, which ships a file-backed arena
    #: to workers *by reference* instead of copying it into ``/dev/shm``
    #: (workers re-validate the container themselves).
    source: object | None = field(default=None, compare=False, repr=False)

    @property
    def total_vertices(self) -> int:
        return self.vertex_offset[-1]

    @property
    def total_edges(self) -> int:
        return self.edge_offset[-1]

    def vertex_slice(self, instance: int) -> slice:
        return slice(
            self.vertex_offset[instance], self.vertex_offset[instance + 1]
        )

    def edge_slice(self, instance: int) -> slice:
        return slice(
            self.edge_offset[instance], self.edge_offset[instance + 1]
        )


def arena_incidence(arena: BatchArena) -> CSRLayout:
    """The arena membership's transpose: vertex -> incident global edges.

    One segment per global vertex id listing the global ids of the
    hyperedges containing it, in ascending edge order (the order a
    stable sort of the membership cells would produce).  This is the
    *specification* of the incidence layout the kernel-lane sweeps
    (:mod:`repro.core.kernels`) run their per-vertex ``reduceat``
    reductions over — the sweeps build the same transpose vectorized
    (argsort/bincount) for speed; the kernel-lane tests pin the two
    constructions against each other and against
    :func:`vertex_incidence_csr`.
    """
    membership = arena.membership
    incidence: list[list[int]] = [[] for _ in range(arena.total_vertices)]
    for edge_id in range(membership.num_segments):
        start = membership.starts[edge_id]
        for position in range(start, start + membership.lengths[edge_id]):
            incidence[membership.cells[position]].append(edge_id)
    return _layout(incidence)


#: ``b"ARNA"`` as a little-endian int64: the first header word of
#: every serialized arena.  A buffer without it never reaches the
#: structural decode.
_ARENA_MAGIC = int.from_bytes(b"ARNA\x00\x00\x00\x00", "little")

#: Header words prepended to the structural payload:
#: ``[magic, payload_byte_length, crc32(payload)]``.
_ARENA_HEADER_WORDS = 3
_ARENA_HEADER_BYTES = _ARENA_HEADER_WORDS * 8


def serialize_arena(arena: BatchArena) -> bytes:
    """An arena's structure as one flat native-``int64`` buffer.

    Layout: a 3-word integrity header ``[magic, payload_bytes, crc32]``
    followed by the structural payload ``[K, vertex_offset (K+1),
    edge_offset (K+1), membership.lengths (total edges),
    membership.cells (total cells)]`` — every section's size is
    derivable from the prefix, so :func:`deserialize_arena` needs no
    side channel.  The header lets the receiver reject a truncated or
    bit-flipped buffer with a typed
    :class:`~repro.exceptions.ArenaTransportError` instead of decoding
    garbage: the buffer crosses a process boundary through shared
    memory, where a worker dying mid-transfer (or a chaos plan
    deliberately damaging the segment) must surface as a recoverable
    transport fault, never as silent corruption.  Weights are *not*
    included (they may be Fractions of unbounded size); ship them
    separately and pass them back to :func:`deserialize_arena`.
    """
    payload = array("q", [arena.num_instances])
    payload.extend(arena.vertex_offset)
    payload.extend(arena.edge_offset)
    payload.extend(arena.membership.lengths)
    payload.extend(arena.membership.cells)
    body = payload.tobytes()
    header = array("q", [_ARENA_MAGIC, len(body), zlib.crc32(body)])
    return header.tobytes() + body


def deserialize_arena(buffer, weights) -> BatchArena:
    """Rebuild a :class:`BatchArena` from :func:`serialize_arena` bytes.

    ``buffer`` is any bytes-like object (a ``shared_memory`` view or a
    pickled payload); ``weights`` is the concatenated per-vertex weight
    tuple the sender shipped alongside.  Only same-machine transport is
    supported (native byte order — the buffer never leaves the host).

    Raises :class:`~repro.exceptions.ArenaTransportError` when the
    integrity header is missing, the buffer is shorter than the header
    claims, or the payload checksum does not match — the typed signal
    the scheduler's recovery path (re-dispatch / in-process re-solve)
    keys on.
    """
    raw = bytes(buffer)
    if len(raw) < _ARENA_HEADER_BYTES:
        raise ArenaTransportError(
            f"arena buffer truncated: {len(raw)} bytes is shorter than "
            f"the {_ARENA_HEADER_BYTES}-byte integrity header"
        )
    header = array("q")
    header.frombytes(raw[:_ARENA_HEADER_BYTES])
    magic, body_length, checksum = header
    if magic != _ARENA_MAGIC:
        raise ArenaTransportError(
            f"arena buffer has no integrity header (magic "
            f"{magic:#x} != {_ARENA_MAGIC:#x})"
        )
    body = raw[_ARENA_HEADER_BYTES : _ARENA_HEADER_BYTES + body_length]
    if len(body) != body_length:
        raise ArenaTransportError(
            f"arena buffer truncated: header claims {body_length} payload "
            f"bytes, only {len(body)} present"
        )
    if zlib.crc32(body) != checksum:
        raise ArenaTransportError(
            "arena buffer failed its checksum: the payload was damaged "
            "in transport"
        )
    data = array("q")
    data.frombytes(body)
    count = data[0]
    position = 1
    vertex_offset = tuple(data[position : position + count + 1])
    position += count + 1
    edge_offset = tuple(data[position : position + count + 1])
    position += count + 1
    total_edges = edge_offset[-1]
    lengths = tuple(data[position : position + total_edges])
    position += total_edges
    cells = tuple(data[position : position + sum(lengths)])
    if len(weights) != vertex_offset[-1]:
        raise InvalidInstanceError(
            f"arena buffer carries {vertex_offset[-1]} vertices but "
            f"{len(weights)} weights were supplied"
        )
    instance_of_vertex: list[int] = []
    instance_of_edge: list[int] = []
    for index in range(count):
        instance_of_vertex.extend(
            [index] * (vertex_offset[index + 1] - vertex_offset[index])
        )
        instance_of_edge.extend(
            [index] * (edge_offset[index + 1] - edge_offset[index])
        )
    return BatchArena(
        num_instances=count,
        vertex_offset=vertex_offset,
        edge_offset=edge_offset,
        weights=tuple(weights),
        membership=CSRLayout(
            lengths=lengths, starts=_starts_of(lengths), cells=cells
        ),
        instance_of_vertex=tuple(instance_of_vertex),
        instance_of_edge=tuple(instance_of_edge),
    )


def slice_arena(arena: BatchArena, indices: Sequence[int]) -> BatchArena:
    """Re-slice a packed arena down to a subset of its instances.

    Returns the arena :func:`pack_arena` would build for
    ``[instances[i] for i in indices]`` — bit-for-bit, including cell
    order — but assembled directly from the packed representation in
    one O(selected cells) pass, never expanding the instances back to
    :class:`~repro.hypergraph.hypergraph.Hypergraph` objects.  The
    selection may be any subset in any order (indices need not be
    contiguous or sorted): a lane's eligibility group, the half of a
    shard a work-stealing scheduler takes, a single resubmitted
    instance.  Each instance's membership cells are contiguous in the
    parent (packing concatenates instances in order), so a slice is a
    per-instance copy with the vertex base rewritten.

    Selecting *every* instance in order returns ``arena`` itself: an
    identity slice changes nothing, and passing the original through
    preserves both zero-copy numpy membership arrays (an mmap-backed
    arena from :func:`repro.hypergraph.store.load_arena` stays a view
    over its mapped buffer all the way into the kernel lanes) and the
    :attr:`BatchArena.source` annotation the file-reference transport
    keys on.  Callers treat arenas as immutable, so sharing is safe.
    """
    indices = list(indices)
    if len(indices) == arena.num_instances and all(
        index == position for position, index in enumerate(indices)
    ):
        return arena
    membership = arena.membership
    # A loaded (or fused-packed) arena holds numpy int64 arrays where a
    # scalar-packed one holds tuples.  Normalize the slabs this pass
    # iterates to plain Python ints up front: downstream consumers
    # (``serialize_arena``'s array("q"), Hypergraph reconstruction)
    # require exact ``int`` cells, never numpy scalars.
    membership_lengths = membership.lengths
    membership_cells = membership.cells
    membership_starts = membership.starts
    if hasattr(membership_lengths, "tolist"):
        membership_lengths = membership_lengths.tolist()
    if hasattr(membership_cells, "tolist"):
        membership_cells = membership_cells.tolist()
    if hasattr(membership_starts, "tolist"):
        membership_starts = membership_starts.tolist()
    vertex_offset = [0]
    edge_offset = [0]
    weights: list[int | Fraction] = []
    instance_of_vertex: list[int] = []
    instance_of_edge: list[int] = []
    lengths: list[int] = []
    cells: list[int] = []
    for new_index, old_index in enumerate(indices):
        vertex_lo = arena.vertex_offset[old_index]
        vertex_hi = arena.vertex_offset[old_index + 1]
        edge_lo = arena.edge_offset[old_index]
        edge_hi = arena.edge_offset[old_index + 1]
        shift = vertex_offset[-1] - vertex_lo
        vertex_offset.append(vertex_offset[-1] + (vertex_hi - vertex_lo))
        edge_offset.append(edge_offset[-1] + (edge_hi - edge_lo))
        weights.extend(arena.weights[vertex_lo:vertex_hi])
        instance_of_vertex.extend([new_index] * (vertex_hi - vertex_lo))
        instance_of_edge.extend([new_index] * (edge_hi - edge_lo))
        lengths.extend(membership_lengths[edge_lo:edge_hi])
        if edge_hi > edge_lo:
            cell_lo = membership_starts[edge_lo]
            cell_hi = (
                membership_starts[edge_hi - 1]
                + membership_lengths[edge_hi - 1]
            )
            cells.extend(
                cell + shift
                for cell in membership_cells[cell_lo:cell_hi]
            )
    return BatchArena(
        num_instances=len(indices),
        vertex_offset=tuple(vertex_offset),
        edge_offset=tuple(edge_offset),
        weights=tuple(weights),
        membership=CSRLayout(
            lengths=tuple(lengths),
            starts=_starts_of(lengths),
            cells=tuple(cells),
        ),
        instance_of_vertex=tuple(instance_of_vertex),
        instance_of_edge=tuple(instance_of_edge),
    )


def patch_arena(
    arena: BatchArena,
    instance: int,
    *,
    removed_edges: Sequence[int] = (),
    added_edges: Sequence[Sequence[int]] = (),
    added_weights: Sequence[int | Fraction] = (),
    reweighted: Sequence[tuple[int, int | Fraction]] = (),
) -> BatchArena:
    """Apply a single-instance delta to a packed arena without re-packing.

    Returns the arena :func:`pack_arena` would build for the same
    instance list with instance ``instance`` mutated — bit-for-bit,
    including cell order — assembled directly from the packed
    representation (the :func:`slice_arena` idiom): the prefix
    instances copy verbatim, the target keeps its surviving rows in
    order with cells unshifted and appends the new rows, and the
    suffix shifts by the net vertex/edge growth in one pass.

    ``removed_edges`` are positions in the instance's local edge order;
    ``added_edges`` are local-vertex member tuples appended after the
    survivors; ``added_weights`` appends new vertices to the instance;
    ``reweighted`` is ``(local vertex, new weight)`` pairs.
    """
    if not 0 <= instance < arena.num_instances:
        raise InvalidInstanceError(
            f"instance {instance} outside 0..{arena.num_instances - 1}"
        )
    vertex_lo = arena.vertex_offset[instance]
    vertex_hi = arena.vertex_offset[instance + 1]
    edge_lo = arena.edge_offset[instance]
    edge_hi = arena.edge_offset[instance + 1]
    local_edges = edge_hi - edge_lo
    local_vertices = (vertex_hi - vertex_lo) + len(added_weights)

    removed: set[int] = set()
    for position in removed_edges:
        if not 0 <= position < local_edges:
            raise InvalidInstanceError(
                f"removed edge position {position!r} outside "
                f"0..{local_edges - 1}"
            )
        if position in removed:
            raise InvalidInstanceError(
                f"edge position {position} removed twice"
            )
        removed.add(position)
    new_rows: list[tuple[int, ...]] = []
    for raw_members in added_edges:
        members = tuple(sorted(raw_members))
        if not members or len(set(members)) != len(members):
            raise InvalidInstanceError(
                f"added hyperedge must be non-empty and duplicate-free, "
                f"got {raw_members!r}"
            )
        if not all(0 <= vertex < local_vertices for vertex in members):
            raise InvalidInstanceError(
                f"added hyperedge {raw_members!r} references a vertex "
                f"outside 0..{local_vertices - 1}"
            )
        new_rows.append(members)

    grown_vertices = len(added_weights)
    grown_edges = len(new_rows) - len(removed)
    vertex_offset = list(arena.vertex_offset)
    edge_offset = list(arena.edge_offset)
    for index in range(instance + 1, arena.num_instances + 1):
        vertex_offset[index] += grown_vertices
        edge_offset[index] += grown_edges

    weights = list(arena.weights[:vertex_hi])
    weights.extend(added_weights)
    for vertex, weight in reweighted:
        if not 0 <= vertex < local_vertices:
            raise InvalidInstanceError(
                f"reweighted vertex {vertex!r} outside "
                f"0..{local_vertices - 1}"
            )
        weights[vertex_lo + vertex] = weight
    weights.extend(arena.weights[vertex_hi:])

    instance_of_vertex = (
        arena.instance_of_vertex[:vertex_hi]
        + (instance,) * grown_vertices
        + arena.instance_of_vertex[vertex_hi:]
    )
    membership = arena.membership
    total_edges = len(membership.lengths)
    cell_lo = (
        membership.starts[edge_lo]
        if edge_lo < total_edges
        else len(membership.cells)
    )
    cell_hi = (
        membership.starts[edge_hi]
        if edge_hi < total_edges
        else len(membership.cells)
    )
    lengths = list(membership.lengths[:edge_lo])
    cells = list(membership.cells[:cell_lo])
    for local in range(local_edges):
        if local in removed:
            continue
        row = edge_lo + local
        lengths.append(membership.lengths[row])
        start = membership.starts[row]
        cells.extend(
            membership.cells[start : start + membership.lengths[row]]
        )
    for members in new_rows:
        lengths.append(len(members))
        cells.extend(vertex_lo + vertex for vertex in members)
    lengths.extend(membership.lengths[edge_hi:])
    cells.extend(
        cell + grown_vertices for cell in membership.cells[cell_hi:]
    )
    instance_of_edge: list[int] = []
    for index in range(arena.num_instances):
        instance_of_edge.extend(
            [index] * (edge_offset[index + 1] - edge_offset[index])
        )
    return BatchArena(
        num_instances=arena.num_instances,
        vertex_offset=tuple(vertex_offset),
        edge_offset=tuple(edge_offset),
        weights=tuple(weights),
        membership=CSRLayout(
            lengths=tuple(lengths),
            starts=_starts_of(lengths),
            cells=tuple(cells),
        ),
        instance_of_vertex=instance_of_vertex,
        instance_of_edge=tuple(instance_of_edge),
    )


def arena_hypergraphs(arena: BatchArena) -> list[Hypergraph]:
    """Reconstruct the packed instances — the inverse of :func:`pack_arena`.

    Per-instance vertex/edge order is preserved (packing preserved it),
    so the reconstructed instances are ``==`` to the originals and any
    solve over them is positionally identical.  Construction goes
    through ``Hypergraph._from_validated``: an arena's cells were
    extracted from live (already-validated) hypergraphs, so re-running
    the per-cell input checks would only tax the worker-side hot path
    of the multiprocess executor.

    The de-offsetting pass is vectorized when numpy is available (one
    C-speed subtraction + ``tolist`` per instance instead of a Python
    generator per cell): reconstruction is the dominant non-solve cost
    of both the worker-side shard decode and the cold-start path over
    a persistent arena store, where the E16 gate times it directly.
    Cells always land back as plain Python ints — numpy scalars inside
    ``Hypergraph.edges`` would leak into covers and JSON rendering.
    """
    membership = arena.membership
    try:  # vectorized de-offset; scalar fallback without numpy
        import numpy as _np
    except ImportError:  # pragma: no cover - numpy-less builds
        _np = None
    # A store-loaded arena knows its weights section could only hold
    # plain ints; forward that verdict so reconstruction skips the
    # per-weight rescan (None = unknown, compute lazily as usual).
    all_int = getattr(arena.source, "weights_all_int", None)
    instances: list[Hypergraph] = []
    if _np is not None and arena.num_instances:
        cells_arr = _np.asarray(membership.cells, dtype=_np.int64)
        lengths_list = (
            membership.lengths.tolist()
            if hasattr(membership.lengths, "tolist")
            else membership.lengths
        )
        starts_list = (
            membership.starts.tolist()
            if hasattr(membership.starts, "tolist")
            else membership.starts
        )
        total_cells = len(cells_arr)
        for index in range(arena.num_instances):
            vertex_base = arena.vertex_offset[index]
            num_vertices = arena.vertex_offset[index + 1] - vertex_base
            edge_lo = arena.edge_offset[index]
            edge_hi = arena.edge_offset[index + 1]
            cell_lo = (
                starts_list[edge_lo]
                if edge_lo < len(starts_list)
                else total_cells
            )
            cell_hi = (
                starts_list[edge_hi]
                if edge_hi < len(starts_list)
                else total_cells
            )
            block = cells_arr[cell_lo:cell_hi]
            local = (
                (block - vertex_base).tolist()
                if vertex_base
                else block.tolist()
            )
            edge_rows: list[tuple[int, ...]] = []
            position = 0
            for edge_id in range(edge_lo, edge_hi):
                length = lengths_list[edge_id]
                edge_rows.append(
                    tuple(local[position : position + length])
                )
                position += length
            weights = tuple(
                arena.weights[vertex_base : arena.vertex_offset[index + 1]]
            )
            instances.append(
                Hypergraph._from_validated(
                    num_vertices,
                    tuple(edge_rows),
                    weights,
                    weights_all_int=all_int,
                )
            )
        return instances
    for index in range(arena.num_instances):
        vertex_base = arena.vertex_offset[index]
        num_vertices = arena.vertex_offset[index + 1] - vertex_base
        edges = tuple(
            tuple(
                int(cell) - vertex_base
                for cell in membership.segment(edge_id)
            )
            for edge_id in range(
                arena.edge_offset[index], arena.edge_offset[index + 1]
            )
        )
        weights = tuple(
            arena.weights[vertex_base : arena.vertex_offset[index + 1]]
        )
        instances.append(
            Hypergraph._from_validated(
                num_vertices, edges, weights, weights_all_int=all_int
            )
        )
    return instances


def pack_arena(hypergraphs: Sequence[Hypergraph]) -> BatchArena:
    """Concatenate instances into one shared CSR arena.

    Preserves per-instance vertex/edge order, so any arena sweep that
    treats segments independently is positionally identical to running
    the instances one by one.  Membership cells are offset member
    vertices in edge-id order; packing is a single O(total cells) pass.
    """
    vertex_offset = [0]
    edge_offset = [0]
    weights: list[int] = []
    instance_of_vertex: list[int] = []
    instance_of_edge: list[int] = []
    membership_lengths: list[int] = []
    membership_cells: list[int] = []
    for index, hypergraph in enumerate(hypergraphs):
        vertex_base = vertex_offset[-1]
        edge_base = edge_offset[-1]
        vertex_offset.append(vertex_base + hypergraph.num_vertices)
        edge_offset.append(edge_base + hypergraph.num_edges)
        weights.extend(hypergraph.weights)
        instance_of_vertex.extend([index] * hypergraph.num_vertices)
        instance_of_edge.extend([index] * hypergraph.num_edges)
        for members in hypergraph.edges:
            membership_lengths.append(len(members))
            membership_cells.extend(
                vertex_base + vertex for vertex in members
            )
    membership = CSRLayout(
        lengths=tuple(membership_lengths),
        starts=_starts_of(membership_lengths),
        cells=tuple(membership_cells),
    )
    return BatchArena(
        num_instances=len(vertex_offset) - 1,
        vertex_offset=tuple(vertex_offset),
        edge_offset=tuple(edge_offset),
        weights=tuple(weights),
        membership=membership,
        instance_of_vertex=tuple(instance_of_vertex),
        instance_of_edge=tuple(instance_of_edge),
    )
