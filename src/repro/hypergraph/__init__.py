"""Hypergraph substrate: instances, generators, set cover, statistics, I/O."""

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.mutable import (
    GraphDelta,
    MutableHypergraph,
    apply_delta,
)
from repro.hypergraph.setcover import SetCoverInstance, random_set_cover
from repro.hypergraph.stats import InstanceStats, instance_stats
from repro.hypergraph.store import (
    ArenaSource,
    load_arena,
    save_arena,
)
from repro.hypergraph.validation import (
    check_paper_assumptions,
    require_cover,
    require_vertex_subset,
)
from repro.hypergraph import generators, io, transforms

__all__ = [
    "transforms",
    "Hypergraph",
    "MutableHypergraph",
    "GraphDelta",
    "apply_delta",
    "SetCoverInstance",
    "random_set_cover",
    "InstanceStats",
    "instance_stats",
    "ArenaSource",
    "save_arena",
    "load_arena",
    "check_paper_assumptions",
    "require_cover",
    "require_vertex_subset",
    "generators",
    "io",
]
