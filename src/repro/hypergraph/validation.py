"""Validation helpers for hypergraph instances and covers.

These checks are shared by the solvers, the test suite, and the
benchmark harness.  They raise library exceptions with actionable
messages rather than returning booleans, so a failed check pinpoints
the offending edge/vertex.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.exceptions import CertificateError, InvalidInstanceError
from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "require_cover",
    "require_vertex_subset",
    "check_paper_assumptions",
]


def require_vertex_subset(hypergraph: Hypergraph, vertices: Iterable[int]) -> set[int]:
    """Validate that ``vertices`` are ids of ``hypergraph``; return them as a set."""
    chosen = set(vertices)
    for vertex in chosen:
        if not isinstance(vertex, int) or isinstance(vertex, bool):
            raise InvalidInstanceError(f"vertex id {vertex!r} is not an int")
        if not 0 <= vertex < hypergraph.num_vertices:
            raise InvalidInstanceError(
                f"vertex id {vertex} outside 0..{hypergraph.num_vertices - 1}"
            )
    return chosen


def require_cover(hypergraph: Hypergraph, vertices: Iterable[int]) -> set[int]:
    """Validate that ``vertices`` is a vertex cover; return it as a set.

    Raises
    ------
    CertificateError
        If some hyperedge is not covered (the first offender is named).
    """
    chosen = require_vertex_subset(hypergraph, vertices)
    for edge_id, edge in enumerate(hypergraph.edges):
        if not chosen.intersection(edge):
            raise CertificateError(
                f"hyperedge {edge_id} = {edge} is not covered by the solution"
            )
    return chosen


def check_paper_assumptions(hypergraph: Hypergraph) -> list[str]:
    """Report which of the paper's Section 2 assumptions the instance meets.

    The algorithm itself works on any valid instance; these assumptions
    only matter for interpreting the CONGEST message-size accounting
    (weights and degrees polynomial in ``n``, ``Δ >= 3``).  Returns a
    list of human-readable warnings (empty when all assumptions hold).
    """
    warnings: list[str] = []
    n = max(hypergraph.num_vertices, 2)
    poly_bound = n**10
    if any(weight > poly_bound for weight in hypergraph.weights):
        warnings.append(
            "some vertex weight exceeds n^10; the O(log n) message-size "
            "accounting for weight exchange no longer applies"
        )
    if hypergraph.num_edges > poly_bound:
        warnings.append(
            "the number of hyperedges exceeds n^10; degree messages may "
            "exceed O(log n) bits"
        )
    if 0 < hypergraph.max_degree < 3:
        warnings.append(
            "maximum degree below 3; the paper assumes Δ >= 3 so that "
            "log log Δ > 0 in the round bounds"
        )
    return warnings
