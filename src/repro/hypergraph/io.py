"""Text serialization for hypergraphs (a DIMACS-like line format).

Format (whitespace separated, ``c``-prefixed comment lines ignored)::

    p mwhvc <num_vertices> <num_edges>
    w <w0> <w1> ... <w_{n-1}>          # optional; defaults to all ones
    e <v> <v> ...                      # one line per hyperedge

Weights are positive rationals: plain integers or exact ``num/den``
tokens (e.g. ``3/2``) — the form ``str(Fraction(...))`` produces, so
fractional-weight instances round-trip exactly.

The format is deliberately minimal and line-oriented so instances can be
versioned, diffed, and produced by other tools.  ``loads``/``dumps`` are
exact inverses (modulo comments), which the round-trip tests enforce.

For interchange with the wider hypergraph ecosystem this module also
speaks **HIF** (the Hypergraph Interchange Format: a JSON document with
``network-type`` / ``nodes`` / ``edges`` / ``incidences`` keys):
:func:`to_hif` / :func:`from_hif` convert to and from the HIF dict
shape, :func:`save_hif` / :func:`load_hif` do the file I/O.  Weights
stay exact across the boundary — integers as JSON ints, big integers
and rationals as their canonical ``str(int)`` / ``"num/den"`` string
tokens (JSON numbers are doubles; round-tripping a ``10^16``-scale
weight through a float would corrupt it silently).  Floats are accepted
on import only when integral.
"""

from __future__ import annotations

import json

from fractions import Fraction
from pathlib import Path

from repro.exceptions import InvalidInstanceError
from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "dumps",
    "loads",
    "save",
    "load",
    "to_hif",
    "from_hif",
    "save_hif",
    "load_hif",
]


def _parse_weight(token: str, line_number: int) -> int | Fraction:
    """An integer or exact ``num/den`` rational weight token."""
    try:
        if "/" in token:
            return Fraction(token)
        return int(token)
    except (ValueError, ZeroDivisionError) as error:
        raise InvalidInstanceError(
            f"line {line_number}: malformed weight {token!r}"
        ) from error


def dumps(hypergraph: Hypergraph, *, comment: str | None = None) -> str:
    """Serialize ``hypergraph`` to the text format."""
    lines: list[str] = []
    if comment:
        for comment_line in comment.splitlines():
            lines.append(f"c {comment_line}")
    lines.append(
        f"p mwhvc {hypergraph.num_vertices} {hypergraph.num_edges}"
    )
    if any(weight != 1 for weight in hypergraph.weights):
        lines.append("w " + " ".join(str(weight) for weight in hypergraph.weights))
    for edge in hypergraph.edges:
        lines.append("e " + " ".join(str(vertex) for vertex in edge))
    return "\n".join(lines) + "\n"


def loads(text: str) -> Hypergraph:
    """Parse the text format back into a :class:`Hypergraph`."""
    num_vertices: int | None = None
    declared_edges: int | None = None
    weights: list[int | Fraction] | None = None
    edges: list[tuple[int, ...]] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        fields = line.split()
        tag = fields[0]
        if tag == "p":
            if num_vertices is not None:
                raise InvalidInstanceError(
                    f"line {line_number}: duplicate problem line"
                )
            if len(fields) != 4 or fields[1] != "mwhvc":
                raise InvalidInstanceError(
                    f"line {line_number}: expected 'p mwhvc <n> <m>', got {line!r}"
                )
            num_vertices = int(fields[2])
            declared_edges = int(fields[3])
        elif tag == "w":
            if num_vertices is None:
                raise InvalidInstanceError(
                    f"line {line_number}: weights before problem line"
                )
            weights = [
                _parse_weight(field, line_number) for field in fields[1:]
            ]
        elif tag == "e":
            if num_vertices is None:
                raise InvalidInstanceError(
                    f"line {line_number}: edge before problem line"
                )
            edges.append(tuple(int(field) for field in fields[1:]))
        else:
            raise InvalidInstanceError(
                f"line {line_number}: unknown line tag {tag!r}"
            )
    if num_vertices is None:
        raise InvalidInstanceError("missing problem line 'p mwhvc <n> <m>'")
    if declared_edges is not None and declared_edges != len(edges):
        raise InvalidInstanceError(
            f"problem line declares {declared_edges} edges but "
            f"{len(edges)} were given"
        )
    return Hypergraph(num_vertices, edges, weights)


def save(hypergraph: Hypergraph, path: str | Path, *, comment: str | None = None) -> None:
    """Write ``hypergraph`` to ``path`` in the text format."""
    Path(path).write_text(dumps(hypergraph, comment=comment), encoding="utf-8")


def load(path: str | Path) -> Hypergraph:
    """Read a hypergraph from ``path``."""
    return loads(Path(path).read_text(encoding="utf-8"))


# --------------------------------------------------------------------------
# HIF (Hypergraph Interchange Format) import/export
# --------------------------------------------------------------------------

#: JSON numbers are IEEE doubles in most HIF consumers; integers beyond
#: 2**53 lose bits there.  We emit ints up to this bound as JSON numbers
#: and everything larger (plus all rationals) as exact string tokens.
_JSON_SAFE_INT = 2**53


def _weight_to_hif(weight: int | Fraction):
    if type(weight) is int and -_JSON_SAFE_INT <= weight <= _JSON_SAFE_INT:
        return weight
    return str(weight)


def _weight_from_hif(value, node) -> int | Fraction:
    if isinstance(value, bool):
        raise InvalidInstanceError(
            f"HIF node {node!r}: boolean weight {value!r}"
        )
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if not value.is_integer():
            raise InvalidInstanceError(
                f"HIF node {node!r}: non-integral float weight {value!r}; "
                f"exact rationals must travel as 'num/den' strings"
            )
        return int(value)
    if isinstance(value, str):
        try:
            return Fraction(value) if "/" in value else int(value)
        except (ValueError, ZeroDivisionError) as error:
            raise InvalidInstanceError(
                f"HIF node {node!r}: malformed weight token {value!r}"
            ) from error
    raise InvalidInstanceError(
        f"HIF node {node!r}: unsupported weight type "
        f"{type(value).__name__}"
    )


def to_hif(hypergraph: Hypergraph) -> dict:
    """``hypergraph`` as a HIF document (a JSON-serializable dict).

    Nodes are the integers ``0..n-1`` carrying their exact weights
    (string tokens beyond double precision); incidences list every
    (edge, node) membership.  Hyperedges are kept in order under
    integer ids so :func:`from_hif` reconstructs the identical
    instance, duplicate edges included.
    """
    incidences = [
        {"edge": edge_id, "node": vertex}
        for edge_id, edge in enumerate(hypergraph.edges)
        for vertex in edge
    ]
    return {
        "network-type": "undirected",
        "metadata": {"problem": "mwhvc"},
        "nodes": [
            {"node": vertex, "weight": _weight_to_hif(weight)}
            for vertex, weight in enumerate(hypergraph.weights)
        ],
        "edges": [
            {"edge": edge_id} for edge_id in range(hypergraph.num_edges)
        ],
        "incidences": incidences,
    }


def from_hif(document: dict) -> Hypergraph:
    """Build a :class:`Hypergraph` from a HIF document.

    Node ids may be arbitrary (ints, strings); they are mapped to dense
    vertex indices in first-appearance order over ``nodes``.  Documents
    exported by :func:`to_hif` round-trip exactly; foreign documents
    get the usual :class:`Hypergraph` validation (so an empty hyperedge
    or a non-positive weight is still a typed refusal, not a crash ten
    layers down).
    """
    if not isinstance(document, dict):
        raise InvalidInstanceError(
            f"HIF document must be a JSON object, got "
            f"{type(document).__name__}"
        )
    nodes = document.get("nodes")
    if not isinstance(nodes, list):
        raise InvalidInstanceError("HIF document has no 'nodes' list")
    index_of_node: dict = {}
    weights: list[int | Fraction] = []
    for entry in nodes:
        if not isinstance(entry, dict) or "node" not in entry:
            raise InvalidInstanceError(
                f"malformed HIF node record {entry!r}"
            )
        node = entry["node"]
        if node in index_of_node:
            raise InvalidInstanceError(f"duplicate HIF node {node!r}")
        index_of_node[node] = len(index_of_node)
        weight = entry.get("weight", 1)
        weights.append(_weight_from_hif(weight, node))
    edge_ids: list = []
    seen_edges: set = set()
    for entry in document.get("edges", []):
        if not isinstance(entry, dict) or "edge" not in entry:
            raise InvalidInstanceError(
                f"malformed HIF edge record {entry!r}"
            )
        edge = entry["edge"]
        if edge in seen_edges:
            raise InvalidInstanceError(f"duplicate HIF edge {edge!r}")
        seen_edges.add(edge)
        edge_ids.append(edge)
    members: dict = {edge: [] for edge in edge_ids}
    for entry in document.get("incidences", []):
        if (
            not isinstance(entry, dict)
            or "edge" not in entry
            or "node" not in entry
        ):
            raise InvalidInstanceError(
                f"malformed HIF incidence record {entry!r}"
            )
        edge, node = entry["edge"], entry["node"]
        if edge not in members:
            # HIF allows edges introduced only through incidences.
            members[edge] = []
            edge_ids.append(edge)
        if node not in index_of_node:
            raise InvalidInstanceError(
                f"HIF incidence references unknown node {node!r}"
            )
        members[edge].append(index_of_node[node])
    edges = [tuple(members[edge]) for edge in edge_ids]
    return Hypergraph(len(index_of_node), edges, weights)


def save_hif(hypergraph: Hypergraph, path: str | Path) -> None:
    """Write ``hypergraph`` to ``path`` as a HIF JSON file."""
    Path(path).write_text(
        json.dumps(to_hif(hypergraph), indent=None, sort_keys=False)
        + "\n",
        encoding="utf-8",
    )


def load_hif(path: str | Path) -> Hypergraph:
    """Read a HIF JSON file from ``path``."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise InvalidInstanceError(
            f"{path} is not valid JSON: {error}"
        ) from error
    return from_hif(document)
