"""Text serialization for hypergraphs (a DIMACS-like line format).

Format (whitespace separated, ``c``-prefixed comment lines ignored)::

    p mwhvc <num_vertices> <num_edges>
    w <w0> <w1> ... <w_{n-1}>          # optional; defaults to all ones
    e <v> <v> ...                      # one line per hyperedge

Weights are positive rationals: plain integers or exact ``num/den``
tokens (e.g. ``3/2``) — the form ``str(Fraction(...))`` produces, so
fractional-weight instances round-trip exactly.

The format is deliberately minimal and line-oriented so instances can be
versioned, diffed, and produced by other tools.  ``loads``/``dumps`` are
exact inverses (modulo comments), which the round-trip tests enforce.
"""

from __future__ import annotations

from fractions import Fraction
from pathlib import Path

from repro.exceptions import InvalidInstanceError
from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["dumps", "loads", "save", "load"]


def _parse_weight(token: str, line_number: int) -> int | Fraction:
    """An integer or exact ``num/den`` rational weight token."""
    try:
        if "/" in token:
            return Fraction(token)
        return int(token)
    except (ValueError, ZeroDivisionError) as error:
        raise InvalidInstanceError(
            f"line {line_number}: malformed weight {token!r}"
        ) from error


def dumps(hypergraph: Hypergraph, *, comment: str | None = None) -> str:
    """Serialize ``hypergraph`` to the text format."""
    lines: list[str] = []
    if comment:
        for comment_line in comment.splitlines():
            lines.append(f"c {comment_line}")
    lines.append(
        f"p mwhvc {hypergraph.num_vertices} {hypergraph.num_edges}"
    )
    if any(weight != 1 for weight in hypergraph.weights):
        lines.append("w " + " ".join(str(weight) for weight in hypergraph.weights))
    for edge in hypergraph.edges:
        lines.append("e " + " ".join(str(vertex) for vertex in edge))
    return "\n".join(lines) + "\n"


def loads(text: str) -> Hypergraph:
    """Parse the text format back into a :class:`Hypergraph`."""
    num_vertices: int | None = None
    declared_edges: int | None = None
    weights: list[int | Fraction] | None = None
    edges: list[tuple[int, ...]] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        fields = line.split()
        tag = fields[0]
        if tag == "p":
            if num_vertices is not None:
                raise InvalidInstanceError(
                    f"line {line_number}: duplicate problem line"
                )
            if len(fields) != 4 or fields[1] != "mwhvc":
                raise InvalidInstanceError(
                    f"line {line_number}: expected 'p mwhvc <n> <m>', got {line!r}"
                )
            num_vertices = int(fields[2])
            declared_edges = int(fields[3])
        elif tag == "w":
            if num_vertices is None:
                raise InvalidInstanceError(
                    f"line {line_number}: weights before problem line"
                )
            weights = [
                _parse_weight(field, line_number) for field in fields[1:]
            ]
        elif tag == "e":
            if num_vertices is None:
                raise InvalidInstanceError(
                    f"line {line_number}: edge before problem line"
                )
            edges.append(tuple(int(field) for field in fields[1:]))
        else:
            raise InvalidInstanceError(
                f"line {line_number}: unknown line tag {tag!r}"
            )
    if num_vertices is None:
        raise InvalidInstanceError("missing problem line 'p mwhvc <n> <m>'")
    if declared_edges is not None and declared_edges != len(edges):
        raise InvalidInstanceError(
            f"problem line declares {declared_edges} edges but "
            f"{len(edges)} were given"
        )
    return Hypergraph(num_vertices, edges, weights)


def save(hypergraph: Hypergraph, path: str | Path, *, comment: str | None = None) -> None:
    """Write ``hypergraph`` to ``path`` in the text format."""
    Path(path).write_text(dumps(hypergraph, comment=comment), encoding="utf-8")


def load(path: str | Path) -> Hypergraph:
    """Read a hypergraph from ``path``."""
    return loads(Path(path).read_text(encoding="utf-8"))
