"""A versioned delta store over immutable :class:`Hypergraph` snapshots.

:class:`Hypergraph` stays the frozen snapshot type every solver
consumes; :class:`MutableHypergraph` is the thing traffic mutates.  It
validates each operation eagerly, counts a *version* per operation, and
can answer two questions the incremental pipeline needs:

* :meth:`MutableHypergraph.snapshot` — the current state as a validated
  immutable ``Hypergraph`` (safe as a dict/set key);
* :meth:`MutableHypergraph.delta_since` — a coalesced
  :class:`GraphDelta` describing the net difference against the
  snapshot taken at an earlier version (an edge added then removed
  cancels out; repeated reweights collapse to the final value).

Deltas are expressed against the *base* snapshot: removed edges are
positions in the base's edge order, added edges/vertices append after
it.  :func:`apply_delta` replays a delta on a base snapshot and returns
the mutated (validated) snapshot; for any mutable store ``g``,
``apply_delta(s_v, g.delta_since(v)) == g.snapshot()`` where ``s_v`` is
the snapshot taken at version ``v``.  Edge order is deterministic:
surviving base edges keep their relative order, added edges follow in
insertion order — this positional stability is what lets the warm
restart map cached per-component results onto the mutated snapshot.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from fractions import Fraction

from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError
from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["GraphDelta", "MutableHypergraph", "apply_delta"]


def _normalized_weight(weight, what: str) -> int | Fraction:
    """Validate one vertex weight exactly as ``Hypergraph`` would."""
    if isinstance(weight, bool) or not isinstance(weight, (int, Fraction)):
        raise InvalidInstanceError(
            f"{what} must be an int or Fraction, got {weight!r}"
        )
    if weight <= 0:
        raise InvalidInstanceError(f"{what} must be positive, got {weight}")
    if isinstance(weight, Fraction) and weight.denominator == 1:
        return int(weight)
    return weight


@dataclass(frozen=True)
class GraphDelta:
    """A net difference between two snapshots of a mutable hypergraph.

    All references are relative to the *base* snapshot: ``removed_edges``
    are positions in its edge order, ``reweighted`` pairs name its
    vertex ids (or newly added ones), ``added_vertices`` are the weights
    of vertices appended after ``base.num_vertices``, and ``added_edges``
    may reference both old and new vertex ids.  ``base_version`` /
    ``version`` tie the delta to a :class:`MutableHypergraph` history;
    bare deltas constructed by hand (e.g. by the serving layer) may
    leave both at 0.
    """

    base_version: int = 0
    version: int = 0
    added_vertices: tuple = ()
    added_edges: tuple = ()
    removed_edges: tuple = ()
    reweighted: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "added_vertices", tuple(self.added_vertices)
        )
        object.__setattr__(
            self,
            "added_edges",
            tuple(tuple(members) for members in self.added_edges),
        )
        object.__setattr__(
            self, "removed_edges", tuple(self.removed_edges)
        )
        object.__setattr__(
            self,
            "reweighted",
            tuple((vertex, weight) for vertex, weight in self.reweighted),
        )

    @property
    def is_empty(self) -> bool:
        """Whether applying this delta is the identity."""
        return not (
            self.added_vertices
            or self.added_edges
            or self.removed_edges
            or self.reweighted
        )

    def touched_vertices(self, base: Hypergraph) -> set[int]:
        """Vertex ids whose solver-visible neighborhood this delta moves.

        Members of removed edges (resolved via ``base``), members of
        added edges, reweighted vertices, and all newly added vertices.
        """
        touched: set[int] = set()
        for position in self.removed_edges:
            touched.update(base.edge(position))
        for members in self.added_edges:
            touched.update(members)
        touched.update(vertex for vertex, _ in self.reweighted)
        touched.update(
            range(
                base.num_vertices,
                base.num_vertices + len(self.added_vertices),
            )
        )
        return touched


def apply_delta(base: Hypergraph, delta: GraphDelta) -> Hypergraph:
    """The mutated snapshot: ``base`` with ``delta`` replayed onto it.

    Surviving base edges keep their relative order; added edges append
    in order.  Only the delta's own pieces need validating — the base
    snapshot already validated everything it carries over — so the
    result is built through the trusted constructor, keeping warm
    restarts from re-paying a full-instance validation pass per point
    update.  Malformed deltas (out-of-range positions or vertices,
    duplicate removals, bad weights, degenerate edges) still raise
    ``InvalidInstanceError`` rather than producing a corrupt snapshot.
    """
    removed = set()
    for position in delta.removed_edges:
        if (
            not isinstance(position, int)
            or isinstance(position, bool)
            or not 0 <= position < base.num_edges
        ):
            raise InvalidInstanceError(
                f"removed edge position {position!r} outside "
                f"0..{base.num_edges - 1}"
            )
        if position in removed:
            raise InvalidInstanceError(
                f"edge position {position} removed twice"
            )
        removed.add(position)
    weights = list(base.weights)
    for offset, weight in enumerate(delta.added_vertices):
        weights.append(
            _normalized_weight(
                weight,
                f"weight of added vertex {base.num_vertices + offset}",
            )
        )
    num_vertices = len(weights)
    for vertex, weight in delta.reweighted:
        if (
            not isinstance(vertex, int)
            or isinstance(vertex, bool)
            or not 0 <= vertex < num_vertices
        ):
            raise InvalidInstanceError(
                f"reweighted vertex {vertex!r} outside 0..{num_vertices - 1}"
            )
        weights[vertex] = _normalized_weight(
            weight, f"weight of vertex {vertex}"
        )
    if removed:
        edges = [
            members
            for position, members in enumerate(base.edges)
            if position not in removed
        ]
    else:
        edges = list(base.edges)
    for members in delta.added_edges:
        edge = tuple(sorted(members))
        if not edge:
            raise InfeasibleInstanceError(
                "added hyperedge is empty and can never be covered"
            )
        if len(set(edge)) != len(edge):
            raise InvalidInstanceError(
                f"added hyperedge contains duplicate vertices: {members!r}"
            )
        for vertex in edge:
            if not isinstance(vertex, int) or isinstance(vertex, bool):
                raise InvalidInstanceError(
                    f"added hyperedge has non-int vertex {vertex!r}"
                )
            if not 0 <= vertex < num_vertices:
                raise InvalidInstanceError(
                    f"added hyperedge references vertex {vertex} outside "
                    f"0..{num_vertices - 1}"
                )
        edges.append(edge)
    return Hypergraph._from_validated(
        num_vertices, tuple(edges), tuple(weights)
    )


#: Operation kinds recorded in the mutation log.
_ADD_EDGE = "add_edge"
_REMOVE_EDGE = "remove_edge"
_ADD_VERTEX = "add_vertex"
_SET_WEIGHT = "set_weight"


@dataclass(frozen=True)
class _Op:
    """One logged mutation (enough to undo it during reconstruction)."""

    kind: str
    version: int
    # add_edge/remove_edge: the edge's stable uid; remove_edge also
    # records the position the edge held when removed.  add_vertex /
    # set_weight: the vertex id; set_weight records the prior weight.
    uid: int = -1
    position: int = -1
    vertex: int = -1
    old_weight: int | Fraction = 0


class MutableHypergraph:
    """A mutable, versioned hypergraph; explicitly **unhashable**.

    Construct from an existing snapshot (``MutableHypergraph(hg)``) or
    a vertex count (``MutableHypergraph(6)`` — six unit-weight isolated
    vertices).  Every successful mutation increments :attr:`version`
    by one.  Operations validate eagerly, so :meth:`snapshot` can skip
    re-validation and the store never holds a malformed state.

    Unhashability is deliberate: snapshots (``Hypergraph``) have value
    semantics and key the session's instance catalogs; letting the
    mutable store masquerade as a key would silently poison those dicts
    the moment it mutates.  Take a :meth:`snapshot` when a key is
    needed.
    """

    __hash__ = None  # mutable: see class docstring

    def __init__(self, base: Hypergraph | int = 0) -> None:
        if isinstance(base, bool) or (
            not isinstance(base, (Hypergraph, int))
        ):
            raise InvalidInstanceError(
                "MutableHypergraph takes a Hypergraph or a vertex "
                f"count, got {base!r}"
            )
        if isinstance(base, int):
            base = Hypergraph(base, ())
        self._weights: list[int | Fraction] = list(base.weights)
        self._edge_uids: list[int] = list(range(base.num_edges))
        self._members: dict[int, tuple[int, ...]] = dict(
            enumerate(base.edges)
        )
        self._next_uid = base.num_edges
        self._version = 0
        self._log: list[_Op] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic operation counter (0 for a fresh store)."""
        return self._version

    @property
    def num_vertices(self) -> int:
        return len(self._weights)

    @property
    def num_edges(self) -> int:
        return len(self._edge_uids)

    def __repr__(self) -> str:
        return (
            f"MutableHypergraph(n={self.num_vertices}, "
            f"m={self.num_edges}, version={self._version})"
        )

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def add_vertex(self, weight: int | Fraction = 1) -> int:
        """Append a new isolated vertex; returns its id."""
        weight = _normalized_weight(weight, "vertex weight")
        vertex = len(self._weights)
        self._weights.append(weight)
        self._version += 1
        self._log.append(
            _Op(_ADD_VERTEX, self._version, vertex=vertex)
        )
        return vertex

    def add_edge(self, members: Iterable[int]) -> int:
        """Insert a hyperedge; returns its current position (end)."""
        edge = tuple(sorted(members))
        if not edge:
            raise InvalidInstanceError("hyperedge must be non-empty")
        if len(set(edge)) != len(edge):
            raise InvalidInstanceError(
                f"hyperedge contains duplicate vertices: {members!r}"
            )
        for vertex in edge:
            if not isinstance(vertex, int) or isinstance(vertex, bool):
                raise InvalidInstanceError(
                    f"hyperedge has non-int vertex {vertex!r}"
                )
            if not 0 <= vertex < len(self._weights):
                raise InvalidInstanceError(
                    f"hyperedge references vertex {vertex} outside "
                    f"0..{len(self._weights) - 1}"
                )
        uid = self._next_uid
        self._next_uid += 1
        self._members[uid] = edge
        self._edge_uids.append(uid)
        self._version += 1
        self._log.append(_Op(_ADD_EDGE, self._version, uid=uid))
        return len(self._edge_uids) - 1

    def remove_edge(self, position: int) -> tuple[int, ...]:
        """Remove the edge at ``position`` (current snapshot order).

        Later edges shift down by one, exactly as in the snapshot the
        next :meth:`snapshot` call returns.  Returns the removed
        edge's members.
        """
        if not isinstance(position, int) or isinstance(position, bool):
            raise InvalidInstanceError(
                f"edge position must be an int, got {position!r}"
            )
        if not 0 <= position < len(self._edge_uids):
            raise InvalidInstanceError(
                f"edge position {position} outside "
                f"0..{len(self._edge_uids) - 1}"
            )
        uid = self._edge_uids.pop(position)
        self._version += 1
        self._log.append(
            _Op(_REMOVE_EDGE, self._version, uid=uid, position=position)
        )
        return self._members[uid]

    def set_weight(self, vertex: int, weight: int | Fraction) -> None:
        """Change ``vertex``'s weight (positive int or Fraction)."""
        if not isinstance(vertex, int) or isinstance(vertex, bool):
            raise InvalidInstanceError(
                f"vertex id must be an int, got {vertex!r}"
            )
        if not 0 <= vertex < len(self._weights):
            raise InvalidInstanceError(
                f"vertex {vertex} outside 0..{len(self._weights) - 1}"
            )
        weight = _normalized_weight(weight, f"weight of vertex {vertex}")
        old = self._weights[vertex]
        self._weights[vertex] = weight
        self._version += 1
        self._log.append(
            _Op(
                _SET_WEIGHT,
                self._version,
                vertex=vertex,
                old_weight=old,
            )
        )

    # ------------------------------------------------------------------
    # Snapshots and deltas
    # ------------------------------------------------------------------

    def snapshot(self) -> Hypergraph:
        """The current state as a validated immutable snapshot.

        Mutations are validated eagerly, so this uses the trusted
        constructor; the result compares equal (and hashes equal) to an
        identically-constructed ``Hypergraph``.
        """
        return Hypergraph._from_validated(
            len(self._weights),
            tuple(self._members[uid] for uid in self._edge_uids),
            tuple(self._weights),
        )

    def _state_at(self, version: int) -> tuple[list[int], list]:
        """(edge uid order, weights) as of ``version``, by undoing the log."""
        uids = list(self._edge_uids)
        weights = list(self._weights)
        for op in reversed(self._log):
            if op.version <= version:
                break
            if op.kind == _ADD_EDGE:
                uids.remove(op.uid)
            elif op.kind == _REMOVE_EDGE:
                uids.insert(op.position, op.uid)
            elif op.kind == _ADD_VERTEX:
                weights.pop()
            else:  # _SET_WEIGHT
                weights[op.vertex] = op.old_weight
        return uids, weights

    def delta_since(self, version: int) -> GraphDelta:
        """The coalesced net difference against the ``version`` snapshot.

        ``apply_delta(snapshot_at_version, delta) == self.snapshot()``.
        Edges added then removed within the window cancel; repeated
        reweights collapse to the final value; weights of vertices
        added within the window fold into ``added_vertices``.
        """
        if (
            not isinstance(version, int)
            or isinstance(version, bool)
            or not 0 <= version <= self._version
        ):
            raise InvalidInstanceError(
                f"version must be in 0..{self._version}, got {version!r}"
            )
        base_uids, base_weights = self._state_at(version)
        base_positions = {uid: pos for pos, uid in enumerate(base_uids)}
        current = set(self._edge_uids)
        removed = tuple(
            sorted(
                pos
                for uid, pos in base_positions.items()
                if uid not in current
            )
        )
        added = tuple(
            self._members[uid]
            for uid in self._edge_uids
            if uid not in base_positions
        )
        n_base = len(base_weights)
        reweighted = tuple(
            (vertex, self._weights[vertex])
            for vertex in range(n_base)
            if self._weights[vertex] != base_weights[vertex]
        )
        return GraphDelta(
            base_version=version,
            version=self._version,
            added_vertices=tuple(self._weights[n_base:]),
            added_edges=added,
            removed_edges=removed,
            reweighted=reweighted,
        )
