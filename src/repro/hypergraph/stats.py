"""Instance statistics used by the benchmark reports.

The paper's bounds are stated in terms of a handful of instance
parameters (``n``, ``m``, ``f``, ``Δ``, ``W``); this module computes
them together with distributional summaries that make benchmark tables
self-describing.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, median

from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["InstanceStats", "instance_stats"]


@dataclass(frozen=True, slots=True)
class InstanceStats:
    """Summary statistics of a hypergraph instance.

    Attributes mirror the paper's notation where one exists:
    ``rank`` is ``f``, ``max_degree`` is ``Δ``, ``weight_ratio`` is
    ``W`` (max weight over min weight).
    """

    num_vertices: int
    num_edges: int
    rank: int
    min_edge_size: int
    mean_edge_size: float
    max_degree: int
    min_degree: int
    mean_degree: float
    median_degree: float
    isolated_vertices: int
    min_weight: int
    max_weight: int
    weight_ratio: float
    total_weight: int

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for table rendering and JSON dumps."""
        return {
            "n": self.num_vertices,
            "m": self.num_edges,
            "f": self.rank,
            "min_edge_size": self.min_edge_size,
            "mean_edge_size": self.mean_edge_size,
            "max_degree": self.max_degree,
            "min_degree": self.min_degree,
            "mean_degree": self.mean_degree,
            "median_degree": self.median_degree,
            "isolated_vertices": self.isolated_vertices,
            "min_weight": self.min_weight,
            "max_weight": self.max_weight,
            "W": self.weight_ratio,
            "total_weight": self.total_weight,
        }


def instance_stats(hypergraph: Hypergraph) -> InstanceStats:
    """Compute :class:`InstanceStats` for ``hypergraph``.

    Degenerate cases (no vertices / no edges) produce zeros rather than
    raising, so sweep harnesses can log them uniformly.
    """
    degrees = [
        hypergraph.degree(vertex) for vertex in range(hypergraph.num_vertices)
    ]
    edge_sizes = [len(edge) for edge in hypergraph.edges]
    weights = hypergraph.weights
    min_weight = min(weights) if weights else 0
    max_weight = max(weights) if weights else 0
    return InstanceStats(
        num_vertices=hypergraph.num_vertices,
        num_edges=hypergraph.num_edges,
        rank=hypergraph.rank,
        min_edge_size=min(edge_sizes) if edge_sizes else 0,
        mean_edge_size=mean(edge_sizes) if edge_sizes else 0.0,
        max_degree=hypergraph.max_degree,
        min_degree=min(degrees) if degrees else 0,
        mean_degree=mean(degrees) if degrees else 0.0,
        median_degree=median(degrees) if degrees else 0.0,
        isolated_vertices=sum(1 for degree in degrees if degree == 0),
        min_weight=min_weight,
        max_weight=max_weight,
        weight_ratio=(max_weight / min_weight) if min_weight else 0.0,
        total_weight=sum(weights),
    )
