"""Deterministic random and structured hypergraph generators.

The benchmark harness sweeps the paper's instance parameters
independently, which requires families where each knob is controlled:

* ``uniform_hypergraph`` — m random rank-``f`` edges (density knob);
* ``regular_hypergraph`` — configuration-model instances where *every*
  vertex has degree exactly ``d`` (so ``Δ = d`` is exact — used by the
  rounds-vs-``Δ`` experiment E3);
* ``bounded_degree_hypergraph`` — greedy random edges under a degree cap;
* graph (rank-2) families for the Table 1 experiments;
* structured instances (paths, cycles, stars, sunflowers, complete
  graphs) with known optimal covers for exact tests.

All generators take an integer ``seed`` and are reproducible across
runs and platforms (they rely only on :mod:`random`'s portable core).
Weights are generated separately (:func:`uniform_weights`,
:func:`geometric_weights`) so weight spread ``W`` sweeps independently
of topology — the key requirement of experiment E4.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.exceptions import InvalidInstanceError
from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "uniform_hypergraph",
    "mixed_rank_hypergraph",
    "regular_hypergraph",
    "bounded_degree_hypergraph",
    "gnp_graph",
    "random_graph",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_hypergraph",
    "sunflower_hypergraph",
    "uniform_weights",
    "geometric_weights",
    "degree_proportional_weights",
]


def _sample_edge(rng: random.Random, num_vertices: int, size: int) -> tuple[int, ...]:
    """One random hyperedge: ``size`` distinct vertices."""
    return tuple(rng.sample(range(num_vertices), size))


def uniform_hypergraph(
    num_vertices: int,
    num_edges: int,
    rank: int,
    *,
    seed: int,
    weights: Sequence[int] | None = None,
    allow_duplicate_edges: bool = True,
) -> Hypergraph:
    """Random ``rank``-uniform hypergraph: every edge has exactly ``rank`` vertices.

    Parameters
    ----------
    allow_duplicate_edges:
        When ``False``, resamples collisions (requires the number of
        distinct possible edges to exceed ``num_edges``).
    """
    if rank < 1:
        raise InvalidInstanceError(f"rank must be >= 1, got {rank}")
    if rank > num_vertices:
        raise InvalidInstanceError(
            f"rank {rank} exceeds number of vertices {num_vertices}"
        )
    rng = random.Random(seed)
    edges: list[tuple[int, ...]] = []
    seen: set[tuple[int, ...]] = set()
    attempts = 0
    while len(edges) < num_edges:
        edge = tuple(sorted(_sample_edge(rng, num_vertices, rank)))
        attempts += 1
        if not allow_duplicate_edges:
            if edge in seen:
                if attempts > 100 * num_edges + 1000:
                    raise InvalidInstanceError(
                        "could not sample enough distinct edges; "
                        "instance too dense for allow_duplicate_edges=False"
                    )
                continue
            seen.add(edge)
        edges.append(edge)
    return Hypergraph(num_vertices, edges, weights)


def mixed_rank_hypergraph(
    num_vertices: int,
    num_edges: int,
    max_rank: int,
    *,
    seed: int,
    min_rank: int = 1,
    weights: Sequence[int] | None = None,
) -> Hypergraph:
    """Random hypergraph with edge sizes uniform in ``[min_rank, max_rank]``.

    Exercises the non-uniform case: the paper only assumes hyperedge
    size is *at most* ``f``, and several proofs (e.g. Lemma 6's halving
    count) depend on per-edge sizes, so tests must not assume
    uniformity.
    """
    if not 1 <= min_rank <= max_rank <= num_vertices:
        raise InvalidInstanceError(
            f"need 1 <= min_rank <= max_rank <= n, got "
            f"min_rank={min_rank}, max_rank={max_rank}, n={num_vertices}"
        )
    rng = random.Random(seed)
    edges = []
    for _ in range(num_edges):
        size = rng.randint(min_rank, max_rank)
        edges.append(_sample_edge(rng, num_vertices, size))
    return Hypergraph(num_vertices, edges, weights)


def regular_hypergraph(
    num_vertices: int,
    rank: int,
    degree: int,
    *,
    seed: int,
    weights: Sequence[int] | None = None,
    max_retries: int = 200,
) -> Hypergraph:
    """Configuration-model hypergraph: ``rank``-uniform, every vertex degree ``degree``.

    Requires ``num_vertices * degree`` divisible by ``rank``.  Stubs are
    matched uniformly at random; edges with repeated vertices are
    repaired by random stub swaps (retrying the whole matching when
    repair stalls), so the result is simple (no vertex repeated inside
    an edge) with exact ``Δ = degree`` — the property experiment E3
    needs to sweep ``Δ`` precisely.
    """
    if rank < 1 or degree < 1:
        raise InvalidInstanceError("rank and degree must be >= 1")
    if rank > num_vertices:
        raise InvalidInstanceError(
            f"rank {rank} exceeds number of vertices {num_vertices}"
        )
    total_stubs = num_vertices * degree
    if total_stubs % rank != 0:
        raise InvalidInstanceError(
            f"num_vertices*degree = {total_stubs} not divisible by rank {rank}"
        )
    num_edges = total_stubs // rank
    rng = random.Random(seed)

    for _ in range(max_retries):
        stubs = [vertex for vertex in range(num_vertices) for _ in range(degree)]
        rng.shuffle(stubs)
        edges = [
            stubs[index * rank : (index + 1) * rank] for index in range(num_edges)
        ]
        if _repair_duplicate_vertices(rng, edges):
            return Hypergraph(
                num_vertices, [tuple(edge) for edge in edges], weights
            )
    raise InvalidInstanceError(
        f"failed to build a simple {rank}-uniform {degree}-regular hypergraph "
        f"on {num_vertices} vertices after {max_retries} attempts "
        "(parameters may be too tight, e.g. rank close to n)"
    )


def _repair_duplicate_vertices(
    rng: random.Random, edges: list[list[int]], max_passes: int = 50
) -> bool:
    """Swap stubs between edges until no edge repeats a vertex.

    Returns ``True`` on success.  Each pass visits every defective edge
    and swaps one offending stub with a random stub of another edge;
    a swap is kept only if it does not create a new defect in either
    edge, which makes progress monotone in the number of defects.
    """
    def defects(edge: list[int]) -> int:
        return len(edge) - len(set(edge))

    for _ in range(max_passes):
        defective = [index for index, edge in enumerate(edges) if defects(edge)]
        if not defective:
            return True
        for edge_index in defective:
            edge = edges[edge_index]
            if not defects(edge):
                continue
            seen: set[int] = set()
            dup_position = 0
            for position, vertex in enumerate(edge):
                if vertex in seen:
                    dup_position = position
                    break
                seen.add(vertex)
            for _attempt in range(40):
                other_index = rng.randrange(len(edges))
                if other_index == edge_index:
                    continue
                other = edges[other_index]
                other_position = rng.randrange(len(other))
                vertex_a = edge[dup_position]
                vertex_b = other[other_position]
                if vertex_b in edge or vertex_a in other:
                    continue
                edge[dup_position] = vertex_b
                other[other_position] = vertex_a
                break
    return all(defects(edge) == 0 for edge in edges)


def bounded_degree_hypergraph(
    num_vertices: int,
    num_edges: int,
    rank: int,
    max_degree: int,
    *,
    seed: int,
    weights: Sequence[int] | None = None,
) -> Hypergraph:
    """Random rank-``rank`` edges subject to a hard per-vertex degree cap.

    Edges are sampled from vertices with remaining capacity; generation
    fails if capacity runs out (``num_edges * rank`` must be at most
    ``num_vertices * max_degree``).
    """
    if num_edges * rank > num_vertices * max_degree:
        raise InvalidInstanceError(
            f"capacity exceeded: {num_edges} edges of rank {rank} need "
            f"{num_edges * rank} slots but only "
            f"{num_vertices * max_degree} available"
        )
    rng = random.Random(seed)
    remaining = [max_degree] * num_vertices
    edges: list[tuple[int, ...]] = []
    for edge_id in range(num_edges):
        available = [vertex for vertex in range(num_vertices) if remaining[vertex] > 0]
        if len(available) < rank:
            raise InvalidInstanceError(
                f"ran out of degree capacity after {edge_id} edges; "
                "lower num_edges or raise max_degree"
            )
        edge = tuple(rng.sample(available, rank))
        for vertex in edge:
            remaining[vertex] -= 1
        edges.append(edge)
    return Hypergraph(num_vertices, edges, weights)


# ----------------------------------------------------------------------
# Graph (rank-2) families for the Table 1 experiments
# ----------------------------------------------------------------------


def gnp_graph(
    num_vertices: int,
    probability: float,
    *,
    seed: int,
    weights: Sequence[int] | None = None,
) -> Hypergraph:
    """Erdős–Rényi ``G(n, p)`` as a rank-2 hypergraph (isolated vertices kept)."""
    if not 0.0 <= probability <= 1.0:
        raise InvalidInstanceError(f"probability must be in [0,1], got {probability}")
    rng = random.Random(seed)
    edges = [
        (u, v)
        for u in range(num_vertices)
        for v in range(u + 1, num_vertices)
        if rng.random() < probability
    ]
    return Hypergraph(num_vertices, edges, weights)


def random_graph(
    num_vertices: int,
    num_edges: int,
    *,
    seed: int,
    weights: Sequence[int] | None = None,
) -> Hypergraph:
    """``num_edges`` distinct uniform random edges on ``num_vertices`` vertices."""
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise InvalidInstanceError(
            f"requested {num_edges} distinct edges but only {max_edges} exist"
        )
    rng = random.Random(seed)
    chosen: set[tuple[int, int]] = set()
    while len(chosen) < num_edges:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u == v:
            continue
        chosen.add((min(u, v), max(u, v)))
    return Hypergraph(num_vertices, sorted(chosen), weights)


def path_graph(
    num_vertices: int, weights: Sequence[int] | None = None
) -> Hypergraph:
    """Path ``0-1-...-(n-1)``; optimal covers are known exactly for tests."""
    edges = [(v, v + 1) for v in range(num_vertices - 1)]
    return Hypergraph(num_vertices, edges, weights)


def cycle_graph(
    num_vertices: int, weights: Sequence[int] | None = None
) -> Hypergraph:
    """Cycle on ``num_vertices >= 3`` vertices."""
    if num_vertices < 3:
        raise InvalidInstanceError("a cycle needs at least 3 vertices")
    edges = [(v, (v + 1) % num_vertices) for v in range(num_vertices)]
    return Hypergraph(num_vertices, edges, weights)


def complete_graph(
    num_vertices: int, weights: Sequence[int] | None = None
) -> Hypergraph:
    """Complete graph ``K_n`` (optimal unweighted cover is ``n - 1``)."""
    edges = [
        (u, v) for u in range(num_vertices) for v in range(u + 1, num_vertices)
    ]
    return Hypergraph(num_vertices, edges, weights)


def star_hypergraph(
    num_leaves: int,
    rank: int,
    *,
    weights: Sequence[int] | None = None,
) -> Hypergraph:
    """A hub vertex 0 in every edge; each edge adds ``rank - 1`` fresh leaves.

    ``Δ = num_leaves`` exactly at the hub; the optimal cover is ``{0}``
    whenever the hub is the cheapest option — a sharp test for both the
    algorithm and for the ``Δ``-sweeps.
    """
    if rank < 2:
        raise InvalidInstanceError("star edges need rank >= 2")
    edges = []
    next_vertex = 1
    for _ in range(num_leaves):
        edge = (0,) + tuple(range(next_vertex, next_vertex + rank - 1))
        next_vertex += rank - 1
        edges.append(edge)
    return Hypergraph(next_vertex, edges, weights)


def sunflower_hypergraph(
    num_petals: int,
    core_size: int,
    petal_size: int,
    *,
    weights: Sequence[int] | None = None,
) -> Hypergraph:
    """Sunflower: every edge = common core + a private petal.

    Any single core vertex covers everything; the structure creates
    maximal coordination pressure among the core vertices, a classic
    stress case for bid-raising schemes.
    """
    if core_size < 1 or petal_size < 0 or num_petals < 1:
        raise InvalidInstanceError("need core_size>=1, petal_size>=0, petals>=1")
    core = tuple(range(core_size))
    edges = []
    next_vertex = core_size
    for _ in range(num_petals):
        petal = tuple(range(next_vertex, next_vertex + petal_size))
        next_vertex += petal_size
        edges.append(core + petal)
    return Hypergraph(next_vertex, edges, weights)


# ----------------------------------------------------------------------
# Weight generators
# ----------------------------------------------------------------------


def uniform_weights(num_vertices: int, max_weight: int, *, seed: int) -> list[int]:
    """Integer weights uniform in ``[1, max_weight]``."""
    if max_weight < 1:
        raise InvalidInstanceError(f"max_weight must be >= 1, got {max_weight}")
    rng = random.Random(seed)
    return [rng.randint(1, max_weight) for _ in range(num_vertices)]


def geometric_weights(
    num_vertices: int, max_weight: int, *, seed: int
) -> list[int]:
    """Weights log-uniform in ``[1, max_weight]`` (heavy spread for E4).

    Log-uniform sampling makes every order of magnitude equally likely,
    which is the regime where weight-dependent algorithms pay their
    ``log W`` factor in full.
    """
    if max_weight < 1:
        raise InvalidInstanceError(f"max_weight must be >= 1, got {max_weight}")
    rng = random.Random(seed)
    import math

    log_max = math.log(max_weight) if max_weight > 1 else 0.0
    return [
        max(1, min(max_weight, round(math.exp(rng.uniform(0.0, log_max)))))
        for _ in range(num_vertices)
    ]


def degree_proportional_weights(
    hypergraph: Hypergraph, scale: int = 1
) -> list[int]:
    """Weight each vertex ``scale * (degree + 1)``.

    Normalized weights ``w(v)/|E(v)|`` are then nearly equal, which
    maximizes bid ties — a useful adversarial weighting for the
    primal–dual schema.
    """
    if scale < 1:
        raise InvalidInstanceError(f"scale must be >= 1, got {scale}")
    return [
        scale * (hypergraph.degree(vertex) + 1)
        for vertex in range(hypergraph.num_vertices)
    ]
