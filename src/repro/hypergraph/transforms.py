"""Instance transformations for experiment construction.

These operations build larger or modified instances from existing ones
while tracking how covers map back — used by the benchmark harness to
scale families and by tests to derive instances with known optima:

* :func:`disjoint_union` — optima add up; rounds are governed by the
  hardest component (locality in action);
* :func:`induced_subhypergraph` — restrict to a vertex subset, keeping
  edges fully inside it;
* :func:`subdivide_edges` — split every hyperedge into two halves
  sharing a fresh "bridge" vertex (rank and structure control);
* :func:`scale_weights` — multiply all weights (the algorithm must be
  invariant to this; tests assert it).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.exceptions import InvalidInstanceError
from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "disjoint_union",
    "induced_subhypergraph",
    "subdivide_edges",
    "scale_weights",
]


def disjoint_union(parts: Sequence[Hypergraph]) -> tuple[Hypergraph, list[int]]:
    """Disjoint union of instances.

    Returns the union and the vertex-id offset of each part (part
    ``k``'s vertex ``v`` becomes ``offsets[k] + v``).  The minimum
    cover of the union is the sum of the parts' minima, and a
    distributed algorithm's round count is the max over parts — a
    useful sanity family for locality tests.
    """
    if not parts:
        return Hypergraph(0, []), []
    offsets: list[int] = []
    edges: list[tuple[int, ...]] = []
    weights: list[int] = []
    total = 0
    for part in parts:
        offsets.append(total)
        for edge in part.edges:
            edges.append(tuple(vertex + total for vertex in edge))
        weights.extend(part.weights)
        total += part.num_vertices
    return Hypergraph(total, edges, weights), offsets


def induced_subhypergraph(
    hypergraph: Hypergraph, vertices: Iterable[int]
) -> tuple[Hypergraph, list[int]]:
    """Restrict to ``vertices``; keep only edges fully inside the set.

    Returns the sub-instance and the mapping from new ids to original
    ids (sorted).  Edges that lose any member are dropped entirely —
    the subhypergraph's covers are exactly the covers of the kept
    edges.
    """
    kept = sorted(set(vertices))
    for vertex in kept:
        if not 0 <= vertex < hypergraph.num_vertices:
            raise InvalidInstanceError(
                f"vertex {vertex} outside 0..{hypergraph.num_vertices - 1}"
            )
    new_id = {old: new for new, old in enumerate(kept)}
    edges = [
        tuple(new_id[vertex] for vertex in edge)
        for edge in hypergraph.edges
        if all(vertex in new_id for vertex in edge)
    ]
    weights = [hypergraph.weight(vertex) for vertex in kept]
    return Hypergraph(len(kept), edges, weights), kept


def subdivide_edges(
    hypergraph: Hypergraph, *, bridge_weight: int = 1
) -> Hypergraph:
    """Split every edge of size >= 2 into two halves joined by a fresh
    bridge vertex.

    Edge ``{v1..vk}`` becomes ``{v1..v_ceil(k/2), b}`` and
    ``{b, v_(ceil(k/2)+1)..vk}`` with a new vertex ``b`` of weight
    ``bridge_weight``.  Covering both halves either uses an original
    member of each half or the single bridge — the hypergraph analogue
    of graph edge subdivision.  Size-1 edges are kept as is.
    """
    if bridge_weight < 1:
        raise InvalidInstanceError("bridge_weight must be >= 1")
    edges: list[tuple[int, ...]] = []
    weights = list(hypergraph.weights)
    next_vertex = hypergraph.num_vertices
    for edge in hypergraph.edges:
        if len(edge) < 2:
            edges.append(edge)
            continue
        half = (len(edge) + 1) // 2
        bridge = next_vertex
        next_vertex += 1
        weights.append(bridge_weight)
        edges.append(tuple(edge[:half]) + (bridge,))
        edges.append((bridge,) + tuple(edge[half:]))
    return Hypergraph(next_vertex, edges, weights)


def scale_weights(hypergraph: Hypergraph, factor: int) -> Hypergraph:
    """Multiply every vertex weight by a positive integer factor.

    The algorithm's behaviour is invariant under uniform weight
    scaling (bids, duals and thresholds all scale linearly); tests
    assert covers and round counts are unchanged.
    """
    if factor < 1:
        raise InvalidInstanceError(f"factor must be >= 1, got {factor}")
    return hypergraph.reweighted(
        [weight * factor for weight in hypergraph.weights]
    )
