"""Weighted hypergraph data structure for covering problems.

A hypergraph ``G = (V, E)`` with positive integer vertex weights is the
central combinatorial object of the paper: Minimum Weight Hypergraph
Vertex Cover (MWHVC) asks for a minimum-weight vertex subset meeting
every hyperedge.  The *rank* ``f`` is the maximum hyperedge size and the
*degree* ``Δ`` is the maximum number of hyperedges containing a single
vertex; both parameterize every bound in the paper.

Vertices and hyperedges are identified by dense integer ids
(``0..n-1`` and ``0..m-1``), which keeps the CONGEST simulator and the
algorithm state machines allocation-friendly and deterministic.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from fractions import Fraction
from typing import Optional

from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError

__all__ = ["Hypergraph"]


class Hypergraph:
    """An immutable vertex-weighted hypergraph.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``; vertices are ``0..n-1``.
    edges:
        Iterable of hyperedges, each a non-empty iterable of distinct
        vertex ids.  Edges are stored as sorted tuples in input order.
    weights:
        Optional sequence of ``n`` positive vertex weights — ints or
        exact rationals (:class:`~fractions.Fraction`; integral
        Fractions are normalized to ints).  Defaults to all ones (the
        unweighted / cardinality problem).  Floats are rejected: the
        algorithm's exactness guarantees require rational arithmetic.

    Raises
    ------
    InvalidInstanceError
        On malformed input: negative ids, out-of-range ids, duplicate
        vertices inside an edge, non-positive or non-rational weights.
    InfeasibleInstanceError
        If some hyperedge is empty (it can never be covered).

    Examples
    --------
    >>> hg = Hypergraph(4, [(0, 1), (1, 2, 3)], weights=[3, 1, 2, 2])
    >>> hg.rank, hg.max_degree
    (3, 2)
    >>> hg.is_cover({1})
    True
    """

    __slots__ = (
        "_num_vertices",
        "_edges",
        "_weights",
        "_incidence",
        "_rank",
        "_max_degree",
        "_weights_all_int",
        "_weights_int64",
        "_max_weight",
    )

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[Iterable[int]],
        weights: Optional[Sequence[int]] = None,
    ) -> None:
        if not isinstance(num_vertices, int) or num_vertices < 0:
            raise InvalidInstanceError(
                f"num_vertices must be a non-negative int, got {num_vertices!r}"
            )
        self._num_vertices = num_vertices

        normalized_edges: list[tuple[int, ...]] = []
        for edge_id, raw_edge in enumerate(edges):
            members = tuple(sorted(raw_edge))
            if not members:
                raise InfeasibleInstanceError(
                    f"hyperedge {edge_id} is empty and can never be covered"
                )
            if len(set(members)) != len(members):
                raise InvalidInstanceError(
                    f"hyperedge {edge_id} contains duplicate vertices: {raw_edge!r}"
                )
            for vertex in members:
                if not isinstance(vertex, int) or isinstance(vertex, bool):
                    raise InvalidInstanceError(
                        f"hyperedge {edge_id} has non-int vertex {vertex!r}"
                    )
                if not 0 <= vertex < num_vertices:
                    raise InvalidInstanceError(
                        f"hyperedge {edge_id} references vertex {vertex} "
                        f"outside 0..{num_vertices - 1}"
                    )
            normalized_edges.append(members)
        self._edges = tuple(normalized_edges)

        if weights is None:
            weight_tuple = (1,) * num_vertices
            all_int = True
        else:
            weight_list = list(weights)
            if len(weight_list) != num_vertices:
                raise InvalidInstanceError(
                    f"expected {num_vertices} weights, got {len(weight_list)}"
                )
            all_int = True
            for vertex, weight in enumerate(weight_list):
                if isinstance(weight, bool) or not isinstance(
                    weight, (int, Fraction)
                ):
                    raise InvalidInstanceError(
                        f"weight of vertex {vertex} must be an int or "
                        f"Fraction, got {weight!r}"
                    )
                if weight <= 0:
                    raise InvalidInstanceError(
                        f"weight of vertex {vertex} must be positive, got {weight}"
                    )
                if type(weight) is not int:
                    if (
                        isinstance(weight, Fraction)
                        and weight.denominator == 1
                    ):
                        weight_list[vertex] = int(weight)
                    else:
                        all_int = False
            weight_tuple = tuple(weight_list)
        self._weights = weight_tuple
        self._derive_structure()
        # The validation loop just visited every weight — record the
        # all-int verdict now so the fast paths never rescan.
        self._weights_all_int = all_int

    def _derive_structure(self) -> None:
        """Derived state from ``_num_vertices``/``_edges``: rank now,
        incidence and max degree on first use.  The single source both
        constructors call, so validated and trusted instances can never
        diverge.  The incidence transpose costs ``O(n + nnz)`` Python
        work, and the vectorized batch lanes never read it — deferring
        it keeps arena reconstruction (and plain construction) at the
        cost of what the caller actually touches.  Instances are
        immutable, so the deferred values are a pure function of the
        ``(n, edges)`` pair and lazy computation is idempotent."""
        self._incidence = None
        self._rank = max((len(edge) for edge in self._edges), default=0)
        self._max_degree = None
        self._weights_all_int = None
        self._weights_int64 = None
        self._max_weight = None

    def _ensure_incidence(self) -> tuple[tuple[int, ...], ...]:
        """The vertex->edge-ids transpose, built and cached on demand."""
        if self._incidence is None:
            incidence: list[list[int]] = [
                [] for _ in range(self._num_vertices)
            ]
            for edge_id, members in enumerate(self._edges):
                for vertex in members:
                    incidence[vertex].append(edge_id)
            self._incidence = tuple(
                tuple(edge_ids) for edge_ids in incidence
            )
        return self._incidence

    @classmethod
    def _from_validated(
        cls,
        num_vertices: int,
        edges: tuple[tuple[int, ...], ...],
        weights: tuple,
        *,
        weights_all_int: Optional[bool] = None,
    ) -> "Hypergraph":
        """Rebuild a hypergraph from *already-validated* parts.

        For transport layers (the multiprocess executor's worker-side
        arena reconstruction) whose inputs were extracted from a live
        ``Hypergraph``: edges must be sorted tuples of in-range vertex
        ids and weights the normalized tuple a previous construction
        produced.  Skips per-cell input validation only; the derived
        state comes from the same :meth:`_derive_structure` as
        ``__init__``, so the result is ``==`` to the original.
        """
        instance = cls.__new__(cls)
        instance._num_vertices = num_vertices
        instance._edges = edges
        instance._weights = weights
        instance._derive_structure()
        if weights_all_int is not None:
            # Trusted callers that decoded the weights themselves (the
            # arena store's int64 section can only hold plain ints)
            # pass the verdict along instead of forcing a rescan.
            instance._weights_all_int = weights_all_int
        return instance

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Number of hyperedges ``m``."""
        return len(self._edges)

    @property
    def edges(self) -> tuple[tuple[int, ...], ...]:
        """All hyperedges as sorted vertex tuples, indexed by edge id."""
        return self._edges

    @property
    def weights(self) -> tuple[int | Fraction, ...]:
        """Vertex weights indexed by vertex id."""
        return self._weights

    @property
    def rank(self) -> int:
        """The rank ``f``: maximum hyperedge size (0 if no edges)."""
        return self._rank

    @property
    def max_degree(self) -> int:
        """The maximum degree ``Δ``: most hyperedges on one vertex."""
        if self._max_degree is None:
            if self._incidence is not None:
                self._max_degree = max(
                    (len(edge_ids) for edge_ids in self._incidence),
                    default=0,
                )
            else:
                # O(nnz) tally without materializing the O(n) transpose.
                counts: dict[int, int] = {}
                for members in self._edges:
                    for vertex in members:
                        counts[vertex] = counts.get(vertex, 0) + 1
                self._max_degree = max(counts.values(), default=0)
        return self._max_degree

    @property
    def weights_all_int(self) -> bool:
        """Whether every weight is a plain ``int`` (cached).

        The integer-only fast paths (fused iteration 0, the kernel
        lanes' exact scaling) each need this predicate; caching it on
        the immutable instance replaces repeated ``O(n)`` scans with
        one.  Integral :class:`~fractions.Fraction` weights were
        already normalized to ``int`` at construction, so this is
        exactly "no fractional weight survives".
        """
        if self._weights_all_int is None:
            self._weights_all_int = all(
                type(weight) is int for weight in self._weights
            )
        return self._weights_all_int

    def weights_int64(self):
        """The weights as an ``int64`` numpy array, or ``None``.

        ``None`` when numpy is unavailable, a weight is not a plain
        ``int``, or a weight overflows int64.  Cached: the integer
        kernel lanes and the fused iteration-0 sweep both need this
        exact conversion, and the tuple is immutable, so one C-speed
        pass serves every consumer.  Callers must not mutate the
        returned array.
        """
        cached = self._weights_int64
        if cached is None:
            try:
                import numpy
            except ImportError:  # pragma: no cover - numpy-less builds
                numpy = None
            if numpy is None or not self.weights_all_int:
                cached = False
            else:
                try:
                    cached = numpy.asarray(
                        self._weights, dtype=numpy.int64
                    )
                except OverflowError:
                    cached = False
            self._weights_int64 = cached
        return None if cached is False else cached

    @property
    def max_weight(self):
        """Largest vertex weight (cached; 0 for zero vertices).

        The lane admission checks bound every scaled product by the
        maximum weight, so this is read once per instance per lane —
        the cache (and the int64 array when available) turns repeated
        ``O(n)`` Python scans into one C-speed reduction.
        """
        if self._max_weight is None:
            arr = self.weights_int64()
            if arr is not None and arr.size:
                self._max_weight = int(arr.max())
            else:
                self._max_weight = (
                    max(self._weights) if self._weights else 0
                )
        return self._max_weight

    @property
    def max_weight_ratio(self) -> int:
        """``W`` as used in the paper: max weight / min weight, rounded up.

        Returns 1 for the empty hypergraph.
        """
        if not self._weights:
            return 1
        largest = max(self._weights)
        smallest = min(self._weights)
        return -(-largest // smallest)

    def edge(self, edge_id: int) -> tuple[int, ...]:
        """Vertices of hyperedge ``edge_id``."""
        return self._edges[edge_id]

    def weight(self, vertex: int) -> int | Fraction:
        """Weight of ``vertex``."""
        return self._weights[vertex]

    def incident_edges(self, vertex: int) -> tuple[int, ...]:
        """Ids of hyperedges containing ``vertex`` (``E(v)``)."""
        return self._ensure_incidence()[vertex]

    def degree(self, vertex: int) -> int:
        """``|E(v)|``: the number of hyperedges containing ``vertex``."""
        return len(self._ensure_incidence()[vertex])

    def local_max_degree(self, edge_id: int) -> int:
        """``Δ(e) = max_{u in e} |E(u)|`` (Theorem 9's local variant)."""
        return max(self.degree(vertex) for vertex in self._edges[edge_id])

    # ------------------------------------------------------------------
    # Cover queries
    # ------------------------------------------------------------------

    def is_cover(self, vertices: Iterable[int]) -> bool:
        """Whether ``vertices`` intersects every hyperedge."""
        chosen = set(vertices)
        return all(chosen.intersection(edge) for edge in self._edges)

    def uncovered_edges(self, vertices: Iterable[int]) -> list[int]:
        """Ids of hyperedges disjoint from ``vertices``."""
        chosen = set(vertices)
        return [
            edge_id
            for edge_id, edge in enumerate(self._edges)
            if not chosen.intersection(edge)
        ]

    def cover_weight(self, vertices: Iterable[int]) -> int | Fraction:
        """Total weight of a vertex set (vertices counted once each)."""
        return sum(self._weights[vertex] for vertex in set(vertices))

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        """Snapshot identity: value equality over ``(n, edges, weights)``.

        A :meth:`MutableHypergraph.snapshot
        <repro.hypergraph.mutable.MutableHypergraph.snapshot>` taken at
        version ``v`` compares equal to an identically-constructed
        ``Hypergraph`` — and *only* to one.  Instances are immutable,
        so equality (and the hash below) is stable for the object's
        lifetime, making snapshots safe dict/set keys; the mutable
        store itself is deliberately unhashable so it can never
        masquerade as such a key and go stale.  Comparison never
        considers derived state (incidence, rank, degree): both
        constructors derive it from the compared triple.
        """
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return (
            self._num_vertices == other._num_vertices
            and self._edges == other._edges
            and self._weights == other._weights
        )

    def __hash__(self) -> int:
        """Hash of the ``(n, edges, weights)`` identity triple."""
        return hash((self._num_vertices, self._edges, self._weights))

    def __repr__(self) -> str:
        return (
            f"Hypergraph(n={self._num_vertices}, m={self.num_edges}, "
            f"f={self._rank}, max_degree={self.max_degree})"
        )

    def reweighted(self, weights: Sequence[int]) -> "Hypergraph":
        """A copy of this hypergraph with different vertex weights."""
        return Hypergraph(self._num_vertices, self._edges, weights)

    def without_isolated_vertices(self) -> tuple["Hypergraph", list[int]]:
        """Drop degree-0 vertices.

        Returns the compacted hypergraph and a mapping from new vertex
        ids to original ids.  Useful before expensive exact solves.
        """
        incidence = self._ensure_incidence()
        kept = [
            vertex
            for vertex in range(self._num_vertices)
            if incidence[vertex]
        ]
        new_id = {old: new for new, old in enumerate(kept)}
        edges = [
            tuple(new_id[vertex] for vertex in edge) for edge in self._edges
        ]
        weights = [self._weights[vertex] for vertex in kept]
        return Hypergraph(len(kept), edges, weights), kept
