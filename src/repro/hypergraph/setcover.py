"""Weighted Set Cover instances and the reduction to/from MWHVC.

Section 2 of the paper: a set system ``(X, U)`` with set weights maps to
a hypergraph with one *vertex* per set and one *hyperedge* per element
(the hyperedge contains exactly the sets covering that element).  The
hypergraph's rank ``f`` equals the maximum element frequency, and the
degree ``Δ`` equals the maximum set size.

This module keeps set-cover vocabulary (elements, sets) as a first-class
citizen so the examples read naturally, and provides exact round-trip
conversions used by the property tests.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
import random

from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError
from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["SetCoverInstance", "random_set_cover"]


@dataclass(frozen=True)
class SetCoverInstance:
    """A weighted set-cover instance over elements ``0..num_elements-1``.

    Attributes
    ----------
    num_elements:
        Size of the universe ``|X|``.
    sets:
        Tuple of sets, each a sorted tuple of element ids.
    weights:
        Positive integer weight per set.
    """

    num_elements: int
    sets: tuple[tuple[int, ...], ...]
    weights: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        normalized = tuple(tuple(sorted(set(chosen))) for chosen in self.sets)
        object.__setattr__(self, "sets", normalized)
        if not self.weights:
            object.__setattr__(self, "weights", (1,) * len(self.sets))
        if len(self.weights) != len(self.sets):
            raise InvalidInstanceError(
                f"{len(self.sets)} sets but {len(self.weights)} weights"
            )
        for index, weight in enumerate(self.weights):
            if isinstance(weight, bool) or not isinstance(weight, int) or weight <= 0:
                raise InvalidInstanceError(
                    f"weight of set {index} must be a positive int, got {weight!r}"
                )
        covered: set[int] = set()
        for index, chosen in enumerate(self.sets):
            for element in chosen:
                if not 0 <= element < self.num_elements:
                    raise InvalidInstanceError(
                        f"set {index} references element {element} outside "
                        f"0..{self.num_elements - 1}"
                    )
            covered.update(chosen)
        missing = set(range(self.num_elements)) - covered
        if missing:
            raise InfeasibleInstanceError(
                f"elements {sorted(missing)[:5]}... belong to no set; "
                "no cover exists"
            )

    # ------------------------------------------------------------------

    @property
    def num_sets(self) -> int:
        """Number of sets ``|U|``."""
        return len(self.sets)

    @property
    def max_frequency(self) -> int:
        """``f``: the most sets any single element appears in."""
        frequency = [0] * self.num_elements
        for chosen in self.sets:
            for element in chosen:
                frequency[element] += 1
        return max(frequency, default=0)

    @property
    def max_set_size(self) -> int:
        """``Δ`` of the equivalent hypergraph: the largest set."""
        return max((len(chosen) for chosen in self.sets), default=0)

    def is_cover(self, chosen_sets: Iterable[int]) -> bool:
        """Whether the chosen set ids cover every element."""
        covered: set[int] = set()
        for set_id in chosen_sets:
            covered.update(self.sets[set_id])
        return len(covered) == self.num_elements

    def cover_weight(self, chosen_sets: Iterable[int]) -> int:
        """Total weight of the chosen sets."""
        return sum(self.weights[set_id] for set_id in set(chosen_sets))

    # ------------------------------------------------------------------
    # Reductions (Section 2 of the paper)
    # ------------------------------------------------------------------

    def to_hypergraph(self) -> Hypergraph:
        """The equivalent MWHVC instance.

        Vertex ``i`` is set ``i``; hyperedge ``x`` is element ``x`` and
        contains the sets covering ``x``.  A hypergraph vertex cover is
        exactly a set cover of the same weight, so solutions transfer
        with no translation of ids.
        """
        element_edges: list[list[int]] = [[] for _ in range(self.num_elements)]
        for set_id, chosen in enumerate(self.sets):
            for element in chosen:
                element_edges[element].append(set_id)
        return Hypergraph(self.num_sets, element_edges, self.weights)

    @staticmethod
    def from_hypergraph(hypergraph: Hypergraph) -> "SetCoverInstance":
        """Inverse reduction: vertices become sets, hyperedges become elements."""
        sets: list[list[int]] = [
            list(hypergraph.incident_edges(vertex))
            for vertex in range(hypergraph.num_vertices)
        ]
        return SetCoverInstance(
            num_elements=hypergraph.num_edges,
            sets=tuple(tuple(chosen) for chosen in sets),
            weights=hypergraph.weights,
        )


def random_set_cover(
    num_elements: int,
    num_sets: int,
    *,
    seed: int,
    max_frequency: int = 3,
    max_weight: int = 10,
) -> SetCoverInstance:
    """Random feasible set-cover instance with element frequency <= ``max_frequency``.

    Every element is placed in between 1 and ``max_frequency`` distinct
    sets chosen uniformly, which guarantees feasibility and bounds the
    rank ``f`` of the equivalent hypergraph by construction.
    """
    if num_sets < 1:
        raise InvalidInstanceError("need at least one set")
    if max_frequency < 1:
        raise InvalidInstanceError("max_frequency must be >= 1")
    rng = random.Random(seed)
    members: list[set[int]] = [set() for _ in range(num_sets)]
    for element in range(num_elements):
        frequency = rng.randint(1, min(max_frequency, num_sets))
        for set_id in rng.sample(range(num_sets), frequency):
            members[set_id].add(element)
    weights = [rng.randint(1, max_weight) for _ in range(num_sets)]
    return SetCoverInstance(
        num_elements=num_elements,
        sets=tuple(tuple(sorted(chosen)) for chosen in members),
        weights=tuple(weights),
    )
