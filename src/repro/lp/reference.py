"""Reference optima: fractional LP via scipy, exact ILP via branch and bound.

These are *measurement instruments*, not baselines: the benchmark
harness divides produced cover weights by these optima to report true
approximation ratios (experiments E1, E2, E6, E7).  The exact solver is
exponential and guarded by a size limit; the fractional solver scales to
every instance the benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import InvalidInstanceError, ReproError
from repro.hypergraph.hypergraph import Hypergraph

try:  # pragma: no cover - the LP stack is an optional measurement dep
    import numpy as np
    from scipy.optimize import linprog
    from scipy.sparse import csr_matrix
except ImportError:  # pragma: no cover
    np = linprog = csr_matrix = None

__all__ = [
    "fractional_optimum",
    "ExactSolution",
    "exact_optimum",
    "HAS_LP_SOLVER",
]

#: Whether the scipy-backed fractional LP solver is importable.  The
#: exact branch-and-bound solver below is pure Python and always works;
#: only :func:`fractional_optimum` needs the numerical stack.
HAS_LP_SOLVER = linprog is not None


def fractional_optimum(hypergraph: Hypergraph) -> float:
    """Optimal value of the fractional covering LP (Appendix A, (P)).

    Solved with scipy's HiGHS backend.  Returns 0.0 for edgeless
    instances.  This value lower-bounds every integral cover, so
    ``cover_weight / fractional_optimum`` upper-bounds the integrality
    gap-adjusted ratio the paper's guarantee is stated against.
    """
    if linprog is None:
        raise ReproError(
            "fractional_optimum requires numpy and scipy; install the "
            "measurement extras (pip install numpy scipy)"
        )
    if hypergraph.num_edges == 0:
        return 0.0
    rows: list[int] = []
    cols: list[int] = []
    for edge_id, edge in enumerate(hypergraph.edges):
        for vertex in edge:
            rows.append(edge_id)
            cols.append(vertex)
    constraint = csr_matrix(
        (np.ones(len(rows)), (rows, cols)),
        shape=(hypergraph.num_edges, hypergraph.num_vertices),
    )
    result = linprog(
        c=np.asarray(hypergraph.weights, dtype=float),
        A_ub=-constraint,
        b_ub=-np.ones(hypergraph.num_edges),
        bounds=(0, None),
        method="highs",
    )
    if not result.success:
        raise ReproError(
            f"LP solver failed on a feasible covering LP: {result.message}"
        )
    return float(result.fun)


@dataclass(frozen=True, slots=True)
class ExactSolution:
    """An optimal integral cover and its weight."""

    weight: int
    cover: frozenset[int]


def exact_optimum(
    hypergraph: Hypergraph, *, max_vertices: int = 40
) -> ExactSolution:
    """Minimum-weight vertex cover by branch and bound.

    Branches on the vertices of a currently uncovered hyperedge (one of
    them must be chosen — the standard bounded-search-tree argument, at
    most ``f`` children per node), pruning with the incumbent weight.
    A cheap greedy incumbent seeds the bound.

    Raises
    ------
    InvalidInstanceError
        If the instance exceeds ``max_vertices`` (exponential solver).
    """
    if hypergraph.num_vertices > max_vertices:
        raise InvalidInstanceError(
            f"exact solver limited to {max_vertices} vertices; "
            f"instance has {hypergraph.num_vertices}"
        )
    if hypergraph.num_edges == 0:
        return ExactSolution(weight=0, cover=frozenset())

    weights = hypergraph.weights
    edges = hypergraph.edges

    # Greedy incumbent: repeatedly take the cheapest vertex of the first
    # uncovered edge.  Valid (it is a cover) and usually a decent bound.
    incumbent: set[int] = set()
    for edge in edges:
        if not incumbent.intersection(edge):
            incumbent.add(min(edge, key=lambda vertex: weights[vertex]))
    best_weight = sum(weights[vertex] for vertex in incumbent)
    best_cover = frozenset(incumbent)

    def first_uncovered(chosen: set[int]) -> tuple[int, ...] | None:
        for edge in edges:
            if not chosen.intersection(edge):
                return edge
        return None

    def search(chosen: set[int], weight: int) -> None:
        nonlocal best_weight, best_cover
        if weight >= best_weight:
            return
        edge = first_uncovered(chosen)
        if edge is None:
            best_weight = weight
            best_cover = frozenset(chosen)
            return
        for vertex in edge:
            chosen.add(vertex)
            search(chosen, weight + weights[vertex])
            chosen.remove(vertex)

    search(set(), 0)
    return ExactSolution(weight=best_weight, cover=best_cover)
