"""Weak-duality certificates for covering solutions (Claim 20).

The paper's approximation proof is: the produced cover ``C`` consists of
``beta``-tight vertices of a *feasible* dual packing, hence

    w(C) <= (1/(1-beta)) * sum_{v in C} sum_{e : v in e} delta(e)
         <= (f/(1-beta)) * sum_e delta(e)
         =  (f + eps) * dual value
         <= (f + eps) * OPT_fractional        (weak duality)

:class:`ApproximationCertificate` packages that chain so any caller can
verify the guarantee of a returned solution *exactly* — no LP solver and
no floating point involved.  This is the library's primary correctness
artifact; tests and benchmarks check certificates on every run.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from fractions import Fraction

from repro.exceptions import CertificateError
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.validation import require_cover
from repro.lp.covering_lp import Numeric, dual_feasible, dual_value, vertex_load

__all__ = ["ApproximationCertificate", "beta_tight_vertices", "beta_for"]


def beta_for(rank: int, epsilon: Fraction) -> Fraction:
    """``beta = eps / (f + eps)`` as defined in Section 3.1."""
    epsilon = Fraction(epsilon)
    return epsilon / (rank + epsilon)


def beta_tight_vertices(
    hypergraph: Hypergraph,
    delta: Mapping[int, Numeric],
    beta: Fraction,
) -> set[int]:
    """Vertices with ``sum_{e in E(v)} delta(e) >= (1 - beta) w(v)``."""
    beta = Fraction(beta)
    tight: set[int] = set()
    for vertex in range(hypergraph.num_vertices):
        load = vertex_load(hypergraph, delta, vertex)
        if load >= (1 - beta) * hypergraph.weight(vertex):
            tight.add(vertex)
    return tight


@dataclass(frozen=True)
class ApproximationCertificate:
    """Exact evidence that a cover is within ``(f + eps)`` of optimal.

    Attributes
    ----------
    cover_weight:
        ``w(C)`` of the verified cover.
    dual_total:
        ``sum_e delta(e)`` of the verified feasible packing; a lower
        bound on the fractional optimum by weak duality.
    ratio_bound:
        ``f + eps`` — the guarantee being certified.
    """

    cover_weight: Fraction
    dual_total: Fraction
    ratio_bound: Fraction

    @property
    def certified_ratio(self) -> Fraction | None:
        """``w(C) / dual_total``: a proven upper bound on the true ratio.

        ``None`` when the dual is zero (possible only for empty covers
        on edgeless instances).
        """
        if self.dual_total == 0:
            return None
        return self.cover_weight / self.dual_total

    @staticmethod
    def verify(
        hypergraph: Hypergraph,
        cover: Iterable[int],
        delta: Mapping[int, Numeric],
        rank: int,
        epsilon: Fraction,
    ) -> "ApproximationCertificate":
        """Check every link of the Claim 20 chain; raise on any failure.

        Verifies: (1) ``cover`` is a vertex cover, (2) ``delta`` is a
        feasible edge packing, (3) ``w(C) <= (f + eps) * sum delta``.
        Note (3) is implied by every cover vertex being beta-tight but
        is checked directly — it is the statement callers rely on.
        """
        epsilon = Fraction(epsilon)
        chosen = require_cover(hypergraph, cover)
        if not dual_feasible(hypergraph, delta):
            raise CertificateError(
                "dual packing is infeasible: some vertex constraint "
                "sum_{e in E(v)} delta(e) <= w(v) is violated"
            )
        cover_weight = Fraction(hypergraph.cover_weight(chosen))
        total = dual_value(delta)
        bound = Fraction(rank) + epsilon
        if hypergraph.num_edges > 0 and cover_weight > bound * total:
            raise CertificateError(
                f"cover weight {cover_weight} exceeds (f+eps) * dual = "
                f"{bound} * {total} = {bound * total}"
            )
        return ApproximationCertificate(
            cover_weight=cover_weight, dual_total=total, ratio_bound=bound
        )
