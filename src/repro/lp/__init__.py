"""LP/duality substrate: covering LP, edge packing, certificates, reference optima."""

from repro.lp.covering_lp import (
    dual_feasible,
    dual_slack,
    dual_value,
    primal_feasible,
    primal_value,
    vertex_load,
)
from repro.lp.duality import (
    ApproximationCertificate,
    beta_for,
    beta_tight_vertices,
)
from repro.lp.reference import ExactSolution, exact_optimum, fractional_optimum

__all__ = [
    "dual_feasible",
    "dual_slack",
    "dual_value",
    "primal_feasible",
    "primal_value",
    "vertex_load",
    "ApproximationCertificate",
    "beta_for",
    "beta_tight_vertices",
    "ExactSolution",
    "exact_optimum",
    "fractional_optimum",
]
