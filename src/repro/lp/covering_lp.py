"""Primal covering LP and dual edge-packing representations (Appendix A).

The fractional relaxation of MWHVC is::

    minimize    sum_v w(v) x(v)
    subject to  sum_{v in e} x(v) >= 1   for every hyperedge e
                x(v) >= 0

and its dual is the Edge Packing problem::

    maximize    sum_e delta(e)
    subject to  sum_{e : v in e} delta(e) <= w(v)   for every vertex v
                delta(e) >= 0

The paper's entire approximation argument is weak duality on this pair
(Claim 20), so the library represents both explicitly and exactly
(:class:`fractions.Fraction` values), independent of any LP solver.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from fractions import Fraction
from numbers import Rational

from repro.exceptions import InvalidInstanceError
from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "primal_value",
    "primal_feasible",
    "dual_value",
    "dual_feasible",
    "dual_slack",
    "vertex_load",
]

Numeric = Rational | int | float


def _as_fraction(value: Numeric, what: str) -> Fraction:
    try:
        return Fraction(value)
    except (TypeError, ValueError) as error:
        raise InvalidInstanceError(f"{what} {value!r} is not numeric") from error


def primal_value(hypergraph: Hypergraph, assignment: Sequence[Numeric]) -> Fraction:
    """Objective ``sum w(v) x(v)`` of a fractional primal assignment."""
    if len(assignment) != hypergraph.num_vertices:
        raise InvalidInstanceError(
            f"assignment has {len(assignment)} entries for "
            f"{hypergraph.num_vertices} vertices"
        )
    return sum(
        (
            Fraction(hypergraph.weight(vertex))
            * _as_fraction(value, f"x({vertex})")
            for vertex, value in enumerate(assignment)
        ),
        Fraction(0),
    )


def primal_feasible(
    hypergraph: Hypergraph, assignment: Sequence[Numeric]
) -> bool:
    """Whether ``assignment`` is a feasible fractional cover."""
    if len(assignment) != hypergraph.num_vertices:
        return False
    values = [_as_fraction(value, "x") for value in assignment]
    if any(value < 0 for value in values):
        return False
    return all(
        sum((values[vertex] for vertex in edge), Fraction(0)) >= 1
        for edge in hypergraph.edges
    )


def dual_value(delta: Mapping[int, Numeric]) -> Fraction:
    """Objective ``sum_e delta(e)`` of a dual packing."""
    return sum(
        (_as_fraction(value, f"delta({edge})") for edge, value in delta.items()),
        Fraction(0),
    )


def vertex_load(
    hypergraph: Hypergraph, delta: Mapping[int, Numeric], vertex: int
) -> Fraction:
    """``sum_{e in E(v)} delta(e)``: total dual mass on ``vertex``.

    Missing edges contribute zero, so partial packings are accepted.
    """
    return sum(
        (
            _as_fraction(delta.get(edge_id, 0), f"delta({edge_id})")
            for edge_id in hypergraph.incident_edges(vertex)
        ),
        Fraction(0),
    )


def dual_slack(
    hypergraph: Hypergraph, delta: Mapping[int, Numeric], vertex: int
) -> Fraction:
    """``w(v) - sum_{e in E(v)} delta(e)``: remaining packing capacity."""
    return Fraction(hypergraph.weight(vertex)) - vertex_load(
        hypergraph, delta, vertex
    )


def dual_feasible(
    hypergraph: Hypergraph, delta: Mapping[int, Numeric]
) -> bool:
    """Whether ``delta`` is a feasible edge packing (exact arithmetic)."""
    for edge_id in delta:
        if not 0 <= edge_id < hypergraph.num_edges:
            raise InvalidInstanceError(
                f"delta references unknown hyperedge {edge_id}"
            )
    if any(
        _as_fraction(value, f"delta({edge})") < 0
        for edge, value in delta.items()
    ):
        return False
    return all(
        dual_slack(hypergraph, delta, vertex) >= 0
        for vertex in range(hypergraph.num_vertices)
    )
