"""``repro-cover``: command-line front end for the covering solvers.

Subcommands
-----------
solve
    Solve an MWHVC instance from a ``.hg`` file (see
    :mod:`repro.hypergraph.io` for the format) and print the cover.
batch
    Solve every ``.hg`` file in a directory as one batched execution
    over a shared CSR arena (bit-identical to solving them one by one
    with the fastpath executor, but substantially faster).
    ``--stream`` routes the batch through the streaming work-stealing
    session instead of the static shards.  ``--store`` treats the
    directory as a packed corpus catalog (see ``pack``) and solves its
    arena segments directly — no text parsing, zero-copy ``mmap``.
pack
    Pack a directory of ``.hg``/HIF instance files into a persistent
    arena corpus: page-aligned, CRC-checked container segments plus a
    ``manifest.json`` catalog (:mod:`repro.core.corpus`), which
    ``batch --store`` / ``serve --store`` then solve without re-parsing
    or re-packing anything.
serve
    Stream instance file paths from stdin through a
    :class:`~repro.core.stream.BatchSession` — one result line per
    instance, admission micro-batched and scheduled across the worker
    pool while paths keep arriving.  With ``--tcp HOST:PORT`` it
    becomes the network front end instead
    (:class:`~repro.core.server.CoverServer`): concurrent clients
    speaking newline-delimited JSON, per-request cancellation and
    deadlines, bounded admission with backpressure, and a ``stats``
    verb.
generate
    Write a random instance to a ``.hg`` file.
stats
    Print instance statistics (n, m, f, Δ, W, ...).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.fastpath import LANES
from repro.core.params import AlgorithmConfig
from repro.core.result import rational_for_json
from repro.core.solver import (
    solve_mwhvc,
    solve_mwhvc_batch,
    solve_mwhvc_f_approx,
)
from repro.exceptions import InvalidInstanceError, ReproError
from repro.hypergraph import generators, io
from repro.hypergraph.stats import instance_stats

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cover",
        description=(
            "Distributed (f+eps)-approximate weighted hypergraph vertex "
            "cover (DISC 2019 reproduction)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    solve = commands.add_parser("solve", help="solve an instance file")
    solve.add_argument("path", help="instance file (.hg format)")
    solve.add_argument(
        "--epsilon", default="1", help="approximation slack in (0,1], e.g. 1/2"
    )
    solve.add_argument(
        "--f-approx",
        action="store_true",
        help="use Corollary 10's exact f-approximation epsilon",
    )
    solve.add_argument(
        "--executor",
        choices=("lockstep", "fastpath", "congest"),
        default="lockstep",
        help=(
            "lockstep (object cores), fastpath (vectorized arrays, "
            "fastest) or congest (message-passing engine); all three "
            "produce identical covers"
        ),
    )
    solve.add_argument(
        "--lane",
        choices=LANES,
        default="auto",
        help=(
            "fastpath only: strongest kernel lane to attempt (auto == "
            "int64; ineligible or overflowing runs degrade down the "
            "spill ladder to bigint with bit-identical results)"
        ),
    )
    solve.add_argument(
        "--schedule", choices=("spec", "compact"), default="spec"
    )
    solve.add_argument(
        "--check-invariants",
        action="store_true",
        help="verify Claims 1, 2, 4 every iteration",
    )
    solve.add_argument(
        "--json",
        action="store_true",
        help="print the full result as JSON instead of a summary",
    )

    batch = commands.add_parser(
        "batch",
        help=(
            "solve every instance file in a directory as one batched "
            "arena execution"
        ),
    )
    batch.add_argument("directory", help="directory containing .hg files")
    batch.add_argument(
        "--pattern",
        default="*.hg",
        help="glob selecting the instance files (default: *.hg)",
    )
    batch.add_argument(
        "--epsilon", default="1", help="approximation slack in (0,1]"
    )
    batch.add_argument(
        "--schedule", choices=("spec", "compact"), default="spec"
    )
    batch.add_argument(
        "--sequential",
        action="store_true",
        help=(
            "run the instances one by one through the fastpath "
            "executor instead of the shared arena (identical results; "
            "for timing comparisons)"
        ),
    )
    batch.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for the batch (default 1 = in-process, "
            "or one per core with --stream; 0 = one per core).  "
            "Shards are cost-balanced and results are bit-identical "
            "for every N"
        ),
    )
    batch.add_argument(
        "--stream",
        action="store_true",
        help=(
            "admit the instances through the streaming work-stealing "
            "session instead of static cost-model shards (identical "
            "results; wins when per-instance cost is skewed)"
        ),
    )
    batch.add_argument(
        "--json",
        action="store_true",
        help="print one JSON object with per-instance results",
    )
    batch.add_argument(
        "--store",
        action="store_true",
        help=(
            "the directory is a packed corpus catalog (see 'pack'): "
            "solve its arena segments via zero-copy mmap instead of "
            "parsing instance files"
        ),
    )
    batch.add_argument(
        "--skip-corrupt",
        action="store_true",
        help=(
            "--store only: a segment failing its integrity checks is "
            "reported and skipped instead of aborting the batch "
            "(exit code 2 when anything was skipped)"
        ),
    )

    pack = commands.add_parser(
        "pack",
        help=(
            "pack instance files into a persistent arena corpus "
            "(solved later with 'batch --store' / 'serve --store')"
        ),
    )
    pack.add_argument("directory", help="directory of instance files")
    pack.add_argument("output", help="corpus catalog output directory")
    pack.add_argument(
        "--pattern",
        default="*.hg",
        help=(
            "glob selecting the instance files (default: *.hg; "
            "non-.hg matches are read as HIF JSON)"
        ),
    )
    pack.add_argument(
        "--segment-size",
        type=int,
        default=64,
        metavar="K",
        help=(
            "instances per arena segment (bounds packing and solving "
            "memory; default 64)"
        ),
    )

    serve = commands.add_parser(
        "serve",
        help=(
            "serve instances through a batch session: paths from stdin "
            "(default), or a TCP JSON protocol with --tcp HOST:PORT"
        ),
    )
    serve.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        default=None,
        help=(
            "serve concurrent clients over TCP (newline-delimited JSON "
            "protocol; port 0 picks a free port, reported on stdout) "
            "instead of reading instance paths from stdin"
        ),
    )
    serve.add_argument(
        "--epsilon", default="1", help="approximation slack in (0,1]"
    )
    serve.add_argument(
        "--schedule", choices=("spec", "compact"), default="spec"
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help=(
            "worker processes for the session (default 0 = one per "
            "core)"
        ),
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=8,
        metavar="K",
        help="micro-batch size cap for compatible submissions",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=256,
        metavar="R",
        help=(
            "TCP only: admission bound — requests in flight across all "
            "clients before backpressure pauses their sockets"
        ),
    )
    serve.add_argument(
        "--per-client-pending",
        type=int,
        default=None,
        metavar="R",
        help=(
            "TCP only: fairness quota — in-flight requests a single "
            "connection may hold before only it is paused (default "
            "max-pending // 4)"
        ),
    )
    serve.add_argument(
        "--json",
        action="store_true",
        help=(
            "stdin mode only: print one JSON object per line instead "
            "of summaries"
        ),
    )
    serve.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help=(
            "stdin mode only: resolve each stdin line as an instance "
            "id in this packed corpus catalog (see 'pack') instead of "
            "an instance file path"
        ),
    )
    serve.add_argument(
        "--shed-after",
        type=float,
        default=None,
        metavar="S",
        help=(
            "TCP only: load-shedding bound in seconds — a request whose "
            "admission wait exceeds it is answered 'overloaded' with a "
            "retry_after hint instead of queueing (default: pure TCP "
            "backpressure)"
        ),
    )
    serve.add_argument(
        "--max-resident",
        type=int,
        default=None,
        metavar="K",
        help=(
            "TCP only: bound on resident incremental solve states for "
            "the update verb; least-recently-used states beyond it are "
            "evicted and re-solve cold (default: unbounded)"
        ),
    )
    serve.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help=(
            "TCP only, dev/chaos: deterministic fault-injection spec "
            "('seed=3,kill=0.05,hang=0.02,drop=0.01,...'); refused "
            "unless the REPRO_CHAOS=1 environment variable is set, so "
            "a production launcher cannot arm it by accident"
        ),
    )

    generate = commands.add_parser(
        "generate", help="write a random instance file"
    )
    generate.add_argument("path", help="output file")
    generate.add_argument("--vertices", type=int, default=100)
    generate.add_argument("--edges", type=int, default=200)
    generate.add_argument("--rank", type=int, default=3)
    generate.add_argument("--max-weight", type=int, default=100)
    generate.add_argument("--seed", type=int, default=0)

    stats = commands.add_parser("stats", help="print instance statistics")
    stats.add_argument("path", help="instance file (.hg format)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Exit codes: 0 success, 2 usage/instance errors (bad file, malformed
    instance, invalid parameters).
    """
    arguments = _build_parser().parse_args(argv)
    try:
        return _dispatch(arguments)
    except (OSError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _dispatch(arguments: argparse.Namespace) -> int:
    if arguments.command == "solve":
        hypergraph = io.load(arguments.path)
        config = AlgorithmConfig(
            epsilon=arguments.epsilon,
            schedule=arguments.schedule,
            check_invariants=arguments.check_invariants,
        )
        options = {}
        if arguments.executor == "fastpath" or arguments.lane != "auto":
            # Lane forcing applies to the fastpath executor only; the
            # solver rejects it for the others with a clear error.
            options["lane"] = arguments.lane
        if arguments.f_approx:
            result = solve_mwhvc_f_approx(
                hypergraph, config=config, executor=arguments.executor,
                **options,
            )
        else:
            result = solve_mwhvc(
                hypergraph, config=config, executor=arguments.executor,
                **options,
            )
        if arguments.json:
            print(result.to_json(include_dual=True))
        else:
            print(result.summary())
            print("cover:", " ".join(map(str, sorted(result.cover))))
        return 0
    if arguments.command == "batch":
        if arguments.store:
            return _dispatch_batch_store(arguments)
        return _dispatch_batch(arguments)
    if arguments.command == "pack":
        return _dispatch_pack(arguments)
    if arguments.command == "serve":
        return _dispatch_serve(arguments)
    if arguments.command == "generate":
        weights = generators.uniform_weights(
            arguments.vertices, arguments.max_weight, seed=arguments.seed + 1
        )
        hypergraph = generators.mixed_rank_hypergraph(
            arguments.vertices,
            arguments.edges,
            arguments.rank,
            seed=arguments.seed,
            weights=weights,
        )
        io.save(
            hypergraph,
            arguments.path,
            comment=(
                f"random instance: n={arguments.vertices} "
                f"m={arguments.edges} rank<={arguments.rank} "
                f"seed={arguments.seed}"
            ),
        )
        print(f"wrote {hypergraph!r} to {arguments.path}")
        return 0
    if arguments.command == "stats":
        hypergraph = io.load(arguments.path)
        for key, value in instance_stats(hypergraph).as_dict().items():
            print(f"{key:>18}: {value}")
        return 0
    raise AssertionError("unreachable")


def _dispatch_batch(arguments: argparse.Namespace) -> int:
    directory = Path(arguments.directory)
    if not directory.is_dir():
        raise InvalidInstanceError(f"{directory} is not a directory")
    paths = sorted(directory.glob(arguments.pattern))
    if not paths:
        raise InvalidInstanceError(
            f"no files matching {arguments.pattern!r} in {directory}"
        )
    hypergraphs = [io.load(path) for path in paths]
    config = AlgorithmConfig(
        epsilon=arguments.epsilon, schedule=arguments.schedule
    )
    jobs = arguments.jobs
    if jobs is None:
        # The streaming session always runs over the worker pool, so
        # its useful default is the machine; the static paths keep
        # their in-process default.
        jobs = 0 if arguments.stream else 1
    results = solve_mwhvc_batch(
        hypergraphs,
        config=config,
        batched=not arguments.sequential,
        jobs=jobs,
        stream=arguments.stream,
    )
    if arguments.json:
        # Weights may be exact rationals (fractional-weight instances):
        # render them the same canonical "num/den" way CoverResult's
        # own JSON view does, never handing a Fraction to json.dumps.
        print(
            json.dumps(
                {
                    "instances": [
                        {"file": path.name, **result.as_dict()}
                        for path, result in zip(paths, results)
                    ],
                    "count": len(results),
                    "total_weight": rational_for_json(
                        sum(result.weight for result in results)
                    ),
                }
            )
        )
        return 0
    for path, result in zip(paths, results):
        print(f"{path.name}: {result.summary()}")
    total = sum(result.weight for result in results)
    print(f"batch: {len(results)} instances, total cover weight {total}")
    return 0


def _dispatch_pack(arguments: argparse.Namespace) -> int:
    from repro.core.corpus import pack_corpus

    directory = Path(arguments.directory)
    if not directory.is_dir():
        raise InvalidInstanceError(f"{directory} is not a directory")
    paths = sorted(directory.glob(arguments.pattern))
    if not paths:
        raise InvalidInstanceError(
            f"no files matching {arguments.pattern!r} in {directory}"
        )
    catalog = pack_corpus(
        paths, arguments.output, segment_instances=arguments.segment_size
    )
    total_bytes = sum(
        catalog.segment_path(index).stat().st_size
        for index in range(len(catalog.segments))
    )
    print(
        f"packed {len(catalog)} instances into "
        f"{len(catalog.segments)} segments "
        f"({total_bytes} bytes) at {catalog.directory}"
    )
    return 0


def _dispatch_batch_store(arguments: argparse.Namespace) -> int:
    """``batch --store``: solve a packed corpus catalog segment by
    segment — manifest ids label the results, no text files are read,
    and each segment is dropped before the next is mapped."""
    from repro.core.corpus import solve_corpus

    config = AlgorithmConfig(
        epsilon=arguments.epsilon, schedule=arguments.schedule
    )
    rows: list[tuple[str, object]] = []
    skipped: list[str] = []
    for segment in solve_corpus(
        arguments.directory,
        config=config,
        skip_corrupt=arguments.skip_corrupt,
    ):
        if segment.error is not None:
            skipped.append(segment.path)
            print(
                f"error: skipped corrupt segment {segment.path}: "
                f"{segment.error}",
                file=sys.stderr,
            )
            continue
        rows.extend(zip(segment.ids, segment.results))
    if arguments.json:
        print(
            json.dumps(
                {
                    "instances": [
                        {"id": instance_id, **result.as_dict()}
                        for instance_id, result in rows
                    ],
                    "count": len(rows),
                    "skipped_segments": skipped,
                    "total_weight": rational_for_json(
                        sum(result.weight for _, result in rows)
                    ),
                }
            )
        )
        return 2 if skipped else 0
    for instance_id, result in rows:
        print(f"{instance_id}: {result.summary()}")
    total = sum(result.weight for _, result in rows)
    print(
        f"corpus: {len(rows)} instances, total cover weight {total}"
        + (f", {len(skipped)} segments skipped" if skipped else "")
    )
    return 2 if skipped else 0


def _parse_host_port(text: str) -> tuple[str, int]:
    host, separator, port_text = text.rpartition(":")
    if not separator or not host:
        raise InvalidInstanceError(
            f"--tcp expects HOST:PORT, got {text!r}"
        )
    try:
        port = int(port_text)
    except ValueError as error:
        raise InvalidInstanceError(
            f"--tcp expects an integer port, got {port_text!r}"
        ) from error
    if not 0 <= port <= 65535:
        raise InvalidInstanceError(f"--tcp port out of range: {port}")
    return host.strip("[]"), port


def _dispatch_serve_tcp(arguments: argparse.Namespace) -> int:
    """The network front end: concurrent TCP clients over one session.

    Binds, reports the actual address on stdout (``serving on
    HOST:PORT`` — port 0 picks a free one, so harnesses parse this
    line), then serves until SIGINT/SIGTERM, draining gracefully:
    every admitted request is answered before the session closes.
    """
    import asyncio
    import os
    import signal

    from repro.core.server import CoverServer

    host, port = _parse_host_port(arguments.tcp)
    config = AlgorithmConfig(
        epsilon=arguments.epsilon, schedule=arguments.schedule
    )
    fault_plan = None
    if arguments.fault_plan is not None:
        if os.environ.get("REPRO_CHAOS") != "1":
            # Fault injection kills real workers and resets real client
            # connections: an explicit env opt-in keeps the flag from
            # ever being armed by a copy-pasted production launcher.
            raise InvalidInstanceError(
                "--fault-plan is a chaos-testing flag; set REPRO_CHAOS=1 "
                "in the environment to confirm this is not production"
            )
        from repro.core.faults import FaultPlan

        try:
            fault_plan = FaultPlan.from_spec(arguments.fault_plan)
        except ValueError as error:
            raise InvalidInstanceError(
                f"bad --fault-plan spec: {error}"
            ) from error

    async def run() -> None:
        server = CoverServer(
            host,
            port,
            config=config,
            jobs=arguments.jobs,
            max_batch=arguments.max_batch,
            max_pending=arguments.max_pending,
            per_client_pending=arguments.per_client_pending,
            shed_after=arguments.shed_after,
            fault_plan=fault_plan,
            max_resident=arguments.max_resident,
        )
        bound_host, bound_port = await server.start()
        print(f"serving on {bound_host}:{bound_port}", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signal_number in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signal_number, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # platforms without signal handler support
        try:
            await stop.wait()
        except KeyboardInterrupt:
            pass
        print("draining ...", file=sys.stderr, flush=True)
        await server.shutdown()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass  # drain already ran (or never started accepting)
    return 0


def _dispatch_serve(arguments: argparse.Namespace) -> int:
    """The serving loop: paths in on stdin, results out as they land.

    Each non-blank stdin line names one ``.hg`` instance file; it is
    admitted into the session the moment it is read, and finished
    results print in admission order as soon as they (and everything
    admitted before them) resolve — later paths keep streaming in
    while earlier instances are still being solved.  A line that fails
    to load is reported on stderr without stopping the loop; the exit
    code is 2 if any line failed, else 0.
    """
    if arguments.tcp:
        if arguments.store:
            raise InvalidInstanceError(
                "--store is a stdin-mode flag; the TCP protocol ships "
                "instances inline"
            )
        return _dispatch_serve_tcp(arguments)
    from repro.core.stream import BatchSession

    catalog = None
    if arguments.store is not None:
        from repro.core.corpus import ArenaCatalog

        catalog = ArenaCatalog(arguments.store)
    config = AlgorithmConfig(
        epsilon=arguments.epsilon, schedule=arguments.schedule
    )
    failures = 0
    pending: list[tuple[str, object]] = []

    def emit_ready(block: bool) -> None:
        nonlocal failures
        while pending and (block or pending[0][1].done()):
            name, ticket = pending.pop(0)
            try:
                result = ticket.result()
            except Exception as error:  # keep serving past bad instances
                failures += 1
                print(f"error: {name}: {error}", file=sys.stderr)
                continue
            if arguments.json:
                print(
                    json.dumps({"file": name, **result.as_dict()}),
                    flush=True,
                )
            else:
                print(f"{name}: {result.summary()}", flush=True)

    with BatchSession(
        config=config,
        jobs=arguments.jobs,
        max_batch=arguments.max_batch,
        # A service may run indefinitely: don't accumulate the
        # admission log.
        record_schedule=False,
    ) as session:
        for line in sys.stdin:
            path = line.strip()
            if not path:
                continue
            try:
                if catalog is not None:
                    # A --store line is a catalog instance id: the
                    # instance comes off the packed segment, no text
                    # file is opened at all.
                    hypergraph = catalog.load_instance(path)
                else:
                    hypergraph = io.load(path)
            except KeyError as error:
                failures += 1
                print(f"error: {path}: {error}", file=sys.stderr)
                continue
            except (OSError, ReproError) as error:
                failures += 1
                print(f"error: {path}: {error}", file=sys.stderr)
                continue
            pending.append((path, session.submit(hypergraph)))
            emit_ready(block=False)
        emit_ready(block=True)
    return 2 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
