"""Parameter-sweep helpers shared by the benchmark modules.

A sweep runs a set of algorithms over a family of instances and
collects flat result rows (dicts) ready for table rendering or fitting.
Each instance is produced by a factory from a parameter value, so the
benchmark modules read as declarative experiment descriptions.
"""

from __future__ import annotations

import statistics
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

from repro.baselines.base import BaselineRun
from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["SweepPoint", "run_sweep", "aggregate_rounds"]

InstanceFactory = Callable[[object, int], Hypergraph]
Algorithm = Callable[[Hypergraph], BaselineRun]


@dataclass(frozen=True)
class SweepPoint:
    """One (parameter, seed, algorithm) measurement."""

    parameter: object
    seed: int
    algorithm: str
    rounds: int
    iterations: int
    weight: int
    ratio_vs_dual: float | None

    def as_dict(self) -> dict[str, object]:
        """Flat row for table rendering."""
        return {
            "parameter": self.parameter,
            "seed": self.seed,
            "algorithm": self.algorithm,
            "rounds": self.rounds,
            "iterations": self.iterations,
            "weight": self.weight,
            "ratio_vs_dual": self.ratio_vs_dual,
        }


def run_sweep(
    parameters: Sequence[object],
    instance_factory: InstanceFactory,
    algorithms: Mapping[str, Algorithm],
    *,
    seeds: Sequence[int] = (0,),
) -> list[SweepPoint]:
    """Run every algorithm on every (parameter, seed) instance."""
    points: list[SweepPoint] = []
    for parameter in parameters:
        for seed in seeds:
            hypergraph = instance_factory(parameter, seed)
            for name, algorithm in algorithms.items():
                run = algorithm(hypergraph)
                ratio = run.certified_ratio()
                points.append(
                    SweepPoint(
                        parameter=parameter,
                        seed=seed,
                        algorithm=name,
                        rounds=run.rounds,
                        iterations=run.iterations,
                        weight=run.weight,
                        ratio_vs_dual=float(ratio) if ratio else None,
                    )
                )
    return points


def aggregate_rounds(
    points: Sequence[SweepPoint],
) -> dict[tuple[object, str], float]:
    """Mean rounds per (parameter, algorithm) across seeds."""
    buckets: dict[tuple[object, str], list[int]] = {}
    for point in points:
        buckets.setdefault((point.parameter, point.algorithm), []).append(
            point.rounds
        )
    return {
        key: statistics.mean(values) for key, values in buckets.items()
    }
