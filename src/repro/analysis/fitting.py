"""Scaling-law fits for the round-complexity experiments.

Experiment E3 asks: do measured rounds grow like
``log Δ / log log Δ`` (the paper's optimal bound) rather than plain
``log Δ``?  We answer by least-squares fitting ``rounds ~ a·g(Δ) + b``
for each candidate ``g`` and comparing residuals — the canonical way to
check an asymptotic *shape* against finite measurements.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

try:  # pragma: no cover - optional measurement dependency
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

__all__ = ["ScalingFit", "fit_scaling", "MODELS", "compare_models"]


def _log_delta(value: float) -> float:
    return math.log2(max(value, 2.0))


#: Candidate growth models g(Δ) for rounds-vs-degree data.
MODELS: dict[str, Callable[[float], float]] = {
    "log_delta": lambda d: _log_delta(d),
    "log_delta_over_loglog": lambda d: _log_delta(d)
    / max(1.0, math.log2(max(2.0, _log_delta(d)))),
    "sqrt_delta": lambda d: math.sqrt(max(d, 1.0)),
    "linear_delta": lambda d: float(d),
    "log_n": lambda n: _log_delta(n),
    "log_n_squared": lambda n: _log_delta(n) ** 2,
    "constant": lambda d: 1.0,
}


@dataclass(frozen=True, slots=True)
class ScalingFit:
    """Result of fitting ``y ~ a·g(x) + b``."""

    model: str
    slope: float
    intercept: float
    residual_rms: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Fitted value at ``x``."""
        return self.slope * MODELS[self.model](x) + self.intercept


def fit_scaling(
    xs: Sequence[float], ys: Sequence[float], model: str
) -> ScalingFit:
    """Least-squares fit of one model; raises KeyError on unknown names."""
    transform = MODELS[model]
    if np is None:
        raise ImportError(
            "fit_scaling requires numpy (pip install numpy)"
        )
    gx = np.asarray([transform(x) for x in xs], dtype=float)
    y = np.asarray(ys, dtype=float)
    design = np.column_stack([gx, np.ones_like(gx)])
    coefficients, *_ = np.linalg.lstsq(design, y, rcond=None)
    slope, intercept = float(coefficients[0]), float(coefficients[1])
    predictions = design @ coefficients
    residuals = y - predictions
    rms = float(np.sqrt(np.mean(residuals**2)))
    total = float(np.sum((y - y.mean()) ** 2))
    explained = float(np.sum((predictions - y.mean()) ** 2))
    r_squared = explained / total if total > 0 else 1.0
    return ScalingFit(
        model=model,
        slope=slope,
        intercept=intercept,
        residual_rms=rms,
        r_squared=r_squared,
    )


def compare_models(
    xs: Sequence[float], ys: Sequence[float], models: Sequence[str]
) -> list[ScalingFit]:
    """Fit several models; best (lowest residual RMS) first."""
    fits = [fit_scaling(xs, ys, model) for model in models]
    fits.sort(key=lambda fit: fit.residual_rms)
    return fits
