"""Combined experiment report assembly.

``pytest benchmarks/ --benchmark-only`` regenerates one table per
experiment under ``benchmarks/results/``; this module stitches them
into a single document (the measured backbone of EXPERIMENTS.md) so a
reproduction run can be summarized with one call::

    from repro.analysis.report import combined_report
    print(combined_report("benchmarks/results"))
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["EXPERIMENT_ORDER", "combined_report", "available_results"]

#: Canonical experiment order (matching DESIGN.md's per-experiment index).
EXPERIMENT_ORDER = (
    "table1_vertex_cover",
    "table2_hypergraph_cover",
    "rounds_vs_delta",
    "weight_independence",
    "fapprox_scaling",
    "approx_ratio",
    "ilp_covering",
    "ilp_box_sweep",
    "ablation_alpha",
    "ablation_schedule",
    "executor_message_stats",
)


def available_results(results_dir: str | Path) -> list[str]:
    """Experiment names with a result table present, canonical order first."""
    directory = Path(results_dir)
    present = {path.stem for path in directory.glob("*.txt")}
    ordered = [name for name in EXPERIMENT_ORDER if name in present]
    extras = sorted(present - set(EXPERIMENT_ORDER))
    return ordered + extras


def combined_report(results_dir: str | Path) -> str:
    """Concatenate all experiment tables into one annotated document."""
    directory = Path(results_dir)
    sections: list[str] = [
        "MEASURED EXPERIMENT TABLES",
        f"(source: {directory})",
        "",
    ]
    names = available_results(directory)
    if not names:
        return (
            "no experiment results found — run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    for name in names:
        body = (directory / f"{name}.txt").read_text(encoding="utf-8")
        sections.append("=" * 78)
        sections.append(name)
        sections.append("=" * 78)
        sections.append(body.rstrip())
        sections.append("")
    return "\n".join(sections)
