"""Closed-form round bounds for every algorithm in Tables 1 and 2.

Rows of the paper's comparison tables that we did not reimplement are
still *present* in the reproduction: their published bound formulas are
evaluated here (up to the unknown constant factor) and printed next to
measured rounds.  The paper's own bounds (Theorems 8–9, Corollaries
10–12, Lemmas 6–7) are evaluated exactly as stated so benchmarks can
check measured counters against them.

All logarithms are base 2, matching the implementation's levels and
bids.  Functions return floats; callers compare shapes, not constants.
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.core.params import level_cap

__all__ = [
    "log2",
    "log_star",
    "theorem8_iteration_bound",
    "theorem9_round_bound",
    "corollary10_round_bound",
    "kmw_lower_bound",
    "lemma6_raise_bound",
    "lemma7_stuck_bound",
    "TABLE1_BOUNDS",
    "TABLE2_BOUNDS",
]


def log2(value: float) -> float:
    """Base-2 log, clamped below at 1 so bound products stay meaningful."""
    return max(1.0, math.log2(max(value, 2.0)))


def log_star(value: float) -> float:
    """Iterated logarithm ``log* x`` (base 2)."""
    count = 0
    while value > 1.0:
        value = math.log2(value)
        count += 1
    return float(count)


def _z(rank: int, epsilon: Fraction) -> int:
    return level_cap(max(1, rank), Fraction(epsilon))


def theorem8_iteration_bound(
    max_degree: int, rank: int, epsilon: Fraction, alpha: float
) -> float:
    """Theorem 8: iterations <= log_alpha(Δ · 2^(f z)) + f · z · alpha."""
    rank = max(1, rank)
    z = _z(rank, epsilon)
    alpha = max(2.0, float(alpha))
    raise_term = math.log(
        max(2.0, max_degree * 2.0 ** (rank * z)), alpha
    )
    stuck_term = rank * z * alpha
    return raise_term + stuck_term


def theorem9_round_bound(
    max_degree: int, rank: int, epsilon: Fraction, gamma: float = 0.001
) -> float:
    """Theorem 9's round expression (without the hidden constant)::

        f log(f/eps) + log Δ / (gamma log log Δ)
        + min(log Δ, f log(f/eps) (log Δ)^gamma)
    """
    rank = max(1, rank)
    f_term = rank * log2(rank / float(epsilon))
    ld = log2(max_degree)
    lld = log2(ld)
    return (
        f_term
        + ld / (gamma * lld)
        + min(ld, f_term * ld**gamma)
    )


def corollary10_round_bound(rank: int, num_vertices: int) -> float:
    """Corollary 10: the f-approximation runs in O(f log n) rounds."""
    return max(1, rank) * log2(num_vertices)


def kmw_lower_bound(max_degree: int) -> float:
    """The KMW lower bound Ω(log Δ / log log Δ) every algorithm obeys."""
    ld = log2(max_degree)
    return ld / log2(ld)


def lemma6_raise_bound(
    max_degree: int, rank: int, epsilon: Fraction, alpha: float
) -> float:
    """Lemma 6: e-raise iterations per edge <= log_alpha(Δ · 2^(f z))."""
    rank = max(1, rank)
    z = _z(rank, epsilon)
    return math.log(
        max(2.0, max_degree * 2.0 ** (rank * z)), max(2.0, float(alpha))
    )


def lemma7_stuck_bound(alpha: float, *, single_increment: bool = False) -> float:
    """Lemma 7 / Lemma 22: v-stuck iterations per (vertex, level)."""
    bound = max(2.0, float(alpha))
    return 2 * bound if single_increment else bound


# ----------------------------------------------------------------------
# Table 1 (weighted vertex cover, f = 2) bound formulas.
# Signature: (n, max_degree, W, eps) -> float.  Names follow the rows.
# ----------------------------------------------------------------------

TABLE1_BOUNDS = {
    "polishchuk-suomela [21] (3-approx, unweighted)": (
        lambda n, d, W, eps: float(d)
    ),
    "astrand et al. [1] (2-approx, unweighted)": (
        lambda n, d, W, eps: float(d) ** 2
    ),
    "panconesi-rizzi [20]": lambda n, d, W, eps: d + log_star(n),
    "astrand-suomela [2]": lambda n, d, W, eps: d + log_star(W),
    "khuller-vishkin-young [15] (2-approx)": (
        lambda n, d, W, eps: log2(n) ** 2
    ),
    "ben-basat et al. [5]": (
        lambda n, d, W, eps: log2(n) * log2(d) / log2(log2(d)) ** 2
    ),
    "grandoni-konemann-panconesi [12] / koufogiannakis-young [16]": (
        lambda n, d, W, eps: log2(n)
    ),
    "this work (2-approx)": lambda n, d, W, eps: 2 * log2(n),
    "hochbaum/kmw [13,18] (2+eps)": (
        lambda n, d, W, eps: (1.0 / eps) ** 4 * log2(W * d)
    ),
    "khuller-vishkin-young [15] (2+eps)": (
        lambda n, d, W, eps: log2(1.0 / eps) * log2(n)
    ),
    "bar-yehuda et al. [4] (2+eps)": (
        lambda n, d, W, eps: (1.0 / eps) * log2(d) / log2(log2(d))
    ),
    "ben-basat et al. [5] (2+eps)": (
        lambda n, d, W, eps: log2(d) / log2(log2(d))
        + log2(1.0 / eps) * log2(d) / log2(log2(d)) ** 2
    ),
    "this work (2+eps)": (
        lambda n, d, W, eps: log2(d) / log2(log2(d))
        + log2(1.0 / eps) * log2(d) ** 0.001
    ),
}

# ----------------------------------------------------------------------
# Table 2 (hypergraph vertex cover) bound formulas.
# Signature: (n, max_degree, W, f, eps) -> float.
# ----------------------------------------------------------------------

TABLE2_BOUNDS = {
    "astrand-suomela [2] (f-approx)": (
        lambda n, d, W, f, eps: f**2 * d**2 + f * d * log_star(W)
    ),
    "khuller-vishkin-young [15] (f-approx)": (
        lambda n, d, W, f, eps: f * log2(n) ** 2
    ),
    "this work (f-approx)": lambda n, d, W, f, eps: f * log2(n),
    "even-ghaffari-medina [9] (f+eps, unweighted)": (
        lambda n, d, W, f, eps: (f / eps)
        * log2(f * d)
        / log2(log2(f * d))
    ),
    "khuller-vishkin-young [15] (f+eps)": (
        lambda n, d, W, f, eps: f * log2(f / eps) * log2(n)
    ),
    "kuhn-moscibroda-wattenhofer [18] (f+eps)": (
        lambda n, d, W, f, eps: (1.0 / eps) ** 4
        * f**4
        * log2(f)
        * log2(W * d)
    ),
    "this work (f+eps)": (
        lambda n, d, W, f, eps: f * log2(f / eps) * log2(d) ** 0.001
        + log2(d) / log2(log2(d))
    ),
}
