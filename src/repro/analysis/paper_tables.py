"""The paper's Tables 1 and 2, as data.

A machine-readable transcription of the comparison tables (DISC 2019,
pages 5:4), so benchmark reports can align every measured/bound row
with the exact row of the paper it reproduces.  Each row records the
algorithm's properties as the paper states them, the citation tag, and
how this repository covers it (``measured`` — we implemented the
algorithm or an honest stand-in; ``bound`` — we evaluate the published
bound formula; ``lower-bound`` rows are context).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

__all__ = ["PaperRow", "TABLE1_ROWS", "TABLE2_ROWS", "rows_as_table"]

Coverage = Literal["measured", "stand-in", "bound", "n/a"]


@dataclass(frozen=True, slots=True)
class PaperRow:
    """One row of a comparison table as printed in the paper."""

    deterministic: bool
    weighted: bool
    approximation: str
    time: str
    source: str
    coverage: Coverage
    covered_by: str


#: Table 1 — previous distributed algorithms for MWVC (f = 2).
TABLE1_ROWS: tuple[PaperRow, ...] = (
    PaperRow(True, False, "3", "O(Δ)", "[21]", "bound", "analysis.bounds"),
    PaperRow(True, False, "2", "O(Δ^2)", "[1]", "bound", "analysis.bounds"),
    PaperRow(
        True, True, "2", "O(1) for Δ <= 3", "[1]", "n/a",
        "degenerate regime",
    ),
    PaperRow(
        True, True, "2", "O(Δ + log* n)", "[20]", "bound", "analysis.bounds"
    ),
    PaperRow(
        True, True, "2", "O(Δ + log* W)", "[2]", "stand-in",
        "baselines.local_ratio_distributed (randomized scheduling)",
    ),
    PaperRow(
        True, True, "2", "O(log^2 n)", "[15]", "measured",
        "baselines.kvy with eps = 1/(nW)",
    ),
    PaperRow(
        True, True, "2", "O(log n log Δ / log^2 log Δ)", "[5]", "bound",
        "analysis.bounds",
    ),
    PaperRow(
        False, True, "2", "O(log n)", "[12, 16]", "stand-in",
        "baselines.matching (unweighted maximal matching)",
    ),
    PaperRow(
        True, True, "2", "O(log n)", "This work", "measured",
        "core.solve_mwhvc_f_approx",
    ),
    PaperRow(
        True, True, "2+eps", "O(eps^-4 log(W Δ))", "[13, 18]", "stand-in",
        "baselines.dual_doubling (2f variant, log(WΔ) rounds)",
    ),
    PaperRow(
        True, True, "2+eps", "O(log eps^-1 log n)", "[15]", "measured",
        "baselines.kvy",
    ),
    PaperRow(
        True, True, "2+eps", "O(eps^-1 log Δ / log log Δ)", "[4]", "bound",
        "analysis.bounds",
    ),
    PaperRow(
        True,
        True,
        "2+eps",
        "O(log Δ/log log Δ + log eps^-1 log Δ/log^2 log Δ)",
        "[5]",
        "bound",
        "analysis.bounds",
    ),
    PaperRow(
        True,
        True,
        "2+eps",
        "O(log Δ/log log Δ + log eps^-1 (log Δ)^0.001)",
        "This work",
        "measured",
        "core.solve_mwhvc",
    ),
    PaperRow(
        True,
        True,
        "2 + 2^-c(log Δ)^0.99",
        "O(log Δ/log log Δ)",
        "This work",
        "measured",
        "core.solve_mwhvc + core.regimes.corollary12_applies",
    ),
)

#: Table 2 — previous distributed algorithms for MWHVC (general f).
TABLE2_ROWS: tuple[PaperRow, ...] = (
    PaperRow(
        True, True, "f", "O(f^2 Δ^2 + f Δ log* W)", "[2]", "stand-in",
        "baselines.local_ratio_distributed",
    ),
    PaperRow(
        True, True, "f", "O(f log^2 n)", "[15]", "measured",
        "baselines.kvy with eps = 1/(nW)",
    ),
    PaperRow(
        True, True, "f", "O(f log n)", "This work", "measured",
        "core.solve_mwhvc_f_approx",
    ),
    PaperRow(
        True,
        False,
        "f+eps",
        "O(eps^-1 f log(fΔ)/log log(fΔ))",
        "[9]",
        "bound",
        "analysis.bounds",
    ),
    PaperRow(
        True, True, "f+eps", "O(f log(f/eps) log n)", "[15]", "measured",
        "baselines.kvy",
    ),
    PaperRow(
        True,
        True,
        "f+eps",
        "O(eps^-4 f^4 log f log(W Δ))",
        "[18]",
        "stand-in",
        "baselines.dual_doubling",
    ),
    PaperRow(
        True,
        True,
        "f+eps",
        "O(f log(f/eps) (log Δ)^0.001 + log Δ/log log Δ)",
        "This work",
        "measured",
        "core.solve_mwhvc",
    ),
    PaperRow(
        False, False, "f + 1/c", "O(log Δ/log log Δ)", "[9]", "bound",
        "analysis.bounds",
    ),
    PaperRow(
        True,
        True,
        "f + 2^-c(log Δ)^0.99",
        "O(log Δ/log log Δ)",
        "This work",
        "measured",
        "core.solve_mwhvc + core.regimes",
    ),
)


def rows_as_table(rows: tuple[PaperRow, ...]) -> str:
    """Render paper rows with their reproduction coverage."""
    from repro.analysis.tables import render_table

    return render_table(
        ["det.", "weighted", "approx", "time (paper)", "source",
         "coverage", "covered by"],
        [
            [
                row.deterministic,
                row.weighted,
                row.approximation,
                row.time,
                row.source,
                row.coverage,
                row.covered_by,
            ]
            for row in rows
        ],
    )
