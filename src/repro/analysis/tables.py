"""Monospace table rendering for benchmark reports.

Benchmarks print their reproduction tables to stdout (captured into
``bench_output.txt``); this module keeps the formatting consistent and
dependency-free.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "format_value"]


def format_value(value: object) -> str:
    """Compact human-readable cell: floats to 3 significant digits."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[format_value(value) for value in row] for row in rows]
    widths = [
        max(len(headers[column]), *(len(row[column]) for row in cells))
        if cells
        else len(headers[column])
        for column in range(len(headers))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(
        " | ".join(header.ljust(width) for header, width in zip(headers, widths))
    )
    lines.append(separator)
    for row in cells:
        lines.append(
            " | ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)
