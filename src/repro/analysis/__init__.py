"""Analysis harness: bound formulas, scaling fits, sweeps, table rendering."""

from repro.analysis.bounds import (
    TABLE1_BOUNDS,
    TABLE2_BOUNDS,
    corollary10_round_bound,
    kmw_lower_bound,
    lemma6_raise_bound,
    lemma7_stuck_bound,
    log2,
    log_star,
    theorem8_iteration_bound,
    theorem9_round_bound,
)
from repro.analysis.fitting import MODELS, ScalingFit, compare_models, fit_scaling
from repro.analysis.paper_tables import (
    TABLE1_ROWS,
    TABLE2_ROWS,
    PaperRow,
    rows_as_table,
)
from repro.analysis.report import (
    EXPERIMENT_ORDER,
    available_results,
    combined_report,
)
from repro.analysis.sweep import SweepPoint, aggregate_rounds, run_sweep
from repro.analysis.tables import format_value, render_table

__all__ = [
    "TABLE1_BOUNDS",
    "TABLE2_BOUNDS",
    "corollary10_round_bound",
    "kmw_lower_bound",
    "lemma6_raise_bound",
    "lemma7_stuck_bound",
    "log2",
    "log_star",
    "theorem8_iteration_bound",
    "theorem9_round_bound",
    "MODELS",
    "ScalingFit",
    "compare_models",
    "fit_scaling",
    "EXPERIMENT_ORDER",
    "available_results",
    "combined_report",
    "TABLE1_ROWS",
    "TABLE2_ROWS",
    "PaperRow",
    "rows_as_table",
    "SweepPoint",
    "aggregate_rounds",
    "run_sweep",
    "format_value",
    "render_table",
]
