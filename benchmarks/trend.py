"""Maintain the repo-root ``BENCH_3.json`` cross-commit benchmark series.

The gate benchmarks (``bench_executors.py``, ``bench_batch.py``)
persist machine-readable blobs under ``benchmarks/results/*.json`` via
``conftest.publish_json``.  This script folds the current run's blobs
into a **cross-commit series**: one trend file holding one record per
commit (commit sha, ref, CI run id, and every gate's speedup/floor
pair), so regressions are visible as a time series instead of isolated
snapshots.  Re-runs of the same commit replace that commit's record
rather than duplicating it.

Durability: the series lives in the repo-root ``BENCH_3.json``, which
is **committed** — each PR appends its record on top of the history it
checked out, and the ``bench-trend`` CI job appends the CI-measured
record for the commit under test and uploads the result as an
artifact (the committed file is the durable store; the artifact is the
per-run view).

Usage::

    python benchmarks/trend.py [--output BENCH_3.json]

Pre-PR-3 single-snapshot documents (schema ``v1``, e.g. a leftover
``BENCH_2.json`` passed via ``--output``) are migrated in place: their
single record becomes the first entry of the series.

Exits non-zero if a collected gate reports a speedup below its
recorded floor (belt-and-braces: the pytest assertions are the primary
gate), or if no gate results are present at all.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent
SCHEMA_V1 = "repro-covering/bench-trend/v1"
SCHEMA = "repro-covering/bench-trend/v2"


def collect() -> dict:
    entries = {}
    for path in sorted(RESULTS_DIR.glob("*.json")):
        entries[path.stem] = json.loads(path.read_text(encoding="utf-8"))
    return entries


def current_commit() -> str:
    """The commit this record measures: CI's sha, else git describe.

    Local runs use ``git describe --always --dirty`` so records stay
    attributable (and same-tree re-runs replace one record) even
    outside CI; a dirty working tree is visible in the id.
    """
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        described = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            check=True,
        ).stdout.strip()
        return described or "unknown"
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def build_record(entries: dict) -> dict:
    return {
        "commit": current_commit(),
        "ref": os.environ.get("GITHUB_REF", "unknown"),
        "run_id": os.environ.get("GITHUB_RUN_ID", "local"),
        "entries": entries,
    }


def load_series(path: Path) -> list[dict]:
    """Prior records from ``path`` (empty only if the file is absent).

    An existing-but-unreadable history (truncated write, merge-conflict
    markers, unknown schema) is a hard error — silently starting a
    fresh series would destroy the accumulated history the file exists
    to keep.
    """
    if not path.is_file():
        return []
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(
            f"error: cannot parse existing trend series {path}: {error} "
            "— fix or remove the file instead of overwriting the history"
        ) from error
    if document.get("schema") == SCHEMA:
        series = document.get("series", [])
        if not isinstance(series, list):
            raise SystemExit(
                f"error: {path} has schema {SCHEMA} but no series list"
            )
        return series
    if document.get("schema") == SCHEMA_V1:
        # Migrate a one-shot snapshot into a one-record series.
        return [
            {
                "commit": document.get("commit", "unknown"),
                "ref": document.get("ref", "unknown"),
                "run_id": document.get("run_id", "local"),
                "entries": document.get("entries", {}),
            }
        ]
    raise SystemExit(
        f"error: {path} has unrecognized schema "
        f"{document.get('schema')!r}; refusing to overwrite it"
    )


def append_record(series: list[dict], record: dict) -> list[dict]:
    """The series with ``record`` appended, replacing any earlier
    record for the same commit — including the ``"unknown"`` commit of
    local runs, so repeated local invocations update one record
    instead of growing the file without bound."""
    commit = record["commit"]
    kept = [
        prior for prior in series if prior.get("commit") != commit
    ]
    kept.append(record)
    return kept


def build_document(series: list[dict]) -> dict:
    return {"schema": SCHEMA, "series": series}


def failing_gates(entries: dict) -> list[str]:
    failures = []
    for name, entry in entries.items():
        speedup = entry.get("speedup")
        floor = entry.get("floor")
        if speedup is None or floor is None:
            continue
        if speedup < floor:
            failures.append(
                f"{name}: speedup {speedup}x below the {floor}x floor"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_3.json"),
        help="the trend series to append to (default: repo root)",
    )
    arguments = parser.parse_args(argv)
    entries = collect()
    if not entries:
        print(
            "error: no benchmark JSON found under benchmarks/results/ — "
            "run the gate benchmarks first",
            file=sys.stderr,
        )
        return 1
    output = Path(arguments.output)
    series = append_record(load_series(output), build_record(entries))
    output.write_text(
        json.dumps(build_document(series), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(
        f"wrote {output}: {len(series)} commit record(s), latest with "
        f"{len(entries)} entries:"
    )
    for name, entry in sorted(entries.items()):
        speedup = entry.get("speedup", "n/a")
        floor = entry.get("floor", "n/a")
        print(f"  {name}: speedup {speedup}x (floor {floor}x)")
        if "p99_ms" in entry:
            print(
                f"    latency p50/p95/p99: {entry.get('p50_ms')}/"
                f"{entry.get('p95_ms')}/{entry['p99_ms']} ms"
            )
    failures = failing_gates(entries)
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 2 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
