"""Assemble the repo-root ``BENCH_2.json`` benchmark-trend snapshot.

The gate benchmarks (``bench_executors.py``, ``bench_batch.py``)
persist machine-readable blobs under ``benchmarks/results/*.json`` via
``conftest.publish_json``.  This script collects them into one
top-level document the ``bench-trend`` CI job uploads as an artifact,
so speedup ratios can be compared across commits without parsing
pytest output.

Usage::

    python benchmarks/trend.py [--output BENCH_2.json]

Exits non-zero if a collected gate reports a speedup below its
recorded floor (belt-and-braces: the pytest assertions are the primary
gate), or if no gate results are present at all.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent
SCHEMA = "repro-covering/bench-trend/v1"


def collect() -> dict:
    entries = {}
    for path in sorted(RESULTS_DIR.glob("*.json")):
        entries[path.stem] = json.loads(path.read_text(encoding="utf-8"))
    return entries


def build_document(entries: dict) -> dict:
    return {
        "schema": SCHEMA,
        "commit": os.environ.get("GITHUB_SHA", "unknown"),
        "ref": os.environ.get("GITHUB_REF", "unknown"),
        "run_id": os.environ.get("GITHUB_RUN_ID", "local"),
        "entries": entries,
    }


def failing_gates(entries: dict) -> list[str]:
    failures = []
    for name, entry in entries.items():
        speedup = entry.get("speedup")
        floor = entry.get("floor")
        if speedup is None or floor is None:
            continue
        if speedup < floor:
            failures.append(
                f"{name}: speedup {speedup}x below the {floor}x floor"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_2.json"),
        help="where to write the snapshot (default: repo root)",
    )
    arguments = parser.parse_args(argv)
    entries = collect()
    if not entries:
        print(
            "error: no benchmark JSON found under benchmarks/results/ — "
            "run the gate benchmarks first",
            file=sys.stderr,
        )
        return 1
    document = build_document(entries)
    output = Path(arguments.output)
    output.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {output} with {len(entries)} entries:")
    for name, entry in sorted(entries.items()):
        speedup = entry.get("speedup", "n/a")
        floor = entry.get("floor", "n/a")
        print(f"  {name}: speedup {speedup}x (floor {floor}x)")
    failures = failing_gates(entries)
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 2 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
