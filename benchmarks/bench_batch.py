"""E10 — batched arena executor vs a sequential fastpath loop.

The batched executor (:func:`repro.core.solver.solve_mwhvc_batch`)
packs K independent instances into one shared CSR arena and advances
them together, one vectorized sweep per iteration.  This experiment is
its acceptance gate:

* **exactness** — every instance in the batch must be bit-identical to
  its solo ``executor="fastpath"`` run *and* to the Fraction-core
  lockstep run (cover, weight, duals, iterations, rounds, levels,
  statistics);
* **throughput** — on 32 seeded instances the batched solve must be at
  least 2x faster than the sequential fastpath loop (timed with
  ``verify=False`` on both sides, like the executor speedup gate, so
  the shared certificate cost does not mask the comparison).

The profile uses 9-regular rank-3 instances with weights up to 10^4
and ``eps = 1/200``: parameters chosen to sit comfortably inside the
arena's int64 headroom (no spills — asserted) with real per-iteration
transition depth.  Since PR 3 the *sequential* reference is itself
machine-width (the solo fastpath loop runs the same int64 kernel lane
per instance), so the arena's edge is amortizing per-instance kernel
dispatch — the profile therefore sits in the batch API's actual
regime, many small instances (64 x n=60), where that dispatch
overhead dominates a solo run.

E11 (``test_parallel_jobs_gate``) stacks the multiprocess shards on
top: the same 64-instance suite solved with ``jobs=2`` must be >=
1.5x the in-process ``jobs=1`` arena on multi-core machines (the
gate's floor is recorded as null on single-core boxes, where the
measurement still runs and feeds the trend series) — and bit-identical
either way.
"""

from __future__ import annotations

import os
import time
from fractions import Fraction

from conftest import publish, publish_json

from repro.analysis.tables import render_table
from repro.core.batch import arena_eligibility
from repro.core.parallel import shutdown_pool
from repro.core.params import AlgorithmConfig
from repro.core.solver import solve_mwhvc, solve_mwhvc_batch
from repro.hypergraph.generators import regular_hypergraph, uniform_weights

BATCH_SIZE = 64
N = 60
RANK = 3
DEGREE = 9
MAX_WEIGHT = 10_000
EPSILON = Fraction(1, 200)
THROUGHPUT_FLOOR = 2.0
PARALLEL_JOBS = 2
PARALLEL_FLOOR = 1.5
#: E11 profile: same 64-instance shape, but deeper iteration counts
#: (tight epsilon, small weights keep the int64 arena eligible) so
#: per-instance compute dominates the fixed per-shard transport cost —
#: the regime the multiprocess path exists for.
PARALLEL_MAX_WEIGHT = 100
PARALLEL_EPSILON = Fraction(1, 5000)

OBSERVABLES = (
    "cover",
    "weight",
    "iterations",
    "rounds",
    "dual",
    "dual_total",
    "levels",
    "stats",
)


def build_batch(max_weight=MAX_WEIGHT):
    return [
        regular_hypergraph(
            N,
            RANK,
            DEGREE,
            seed=seed,
            weights=uniform_weights(N, max_weight, seed=seed + 9),
        )
        for seed in range(BATCH_SIZE)
    ]


def test_batch_throughput_and_equality_gate(benchmark):
    """Acceptance: >= 2x over the sequential loop, bit-identical results."""
    instances = build_batch()
    config = AlgorithmConfig(epsilon=EPSILON)

    eligibility = [
        arena_eligibility(hypergraph, config) for hypergraph in instances
    ]
    assert all(flag for flag, _ in eligibility), (
        "benchmark profile must run entirely in the arena lane: "
        f"{[reason for flag, reason in eligibility if not flag]}"
    )

    # Warm-up outside the timed region (numpy kernel compilation,
    # allocator effects) so both sides are measured steady-state.
    solve_mwhvc_batch(instances[:2], config=config, verify=False)
    solve_mwhvc(
        instances[0], config=config, executor="fastpath", verify=False
    )

    def run_pair():
        # Best-of-2 on both sides: a single-shot ratio on a shared CI
        # runner is too exposed to noisy neighbors for a hard gate.
        sequential_times = []
        batch_times = []
        for _ in range(2):
            t0 = time.perf_counter()
            sequential = [
                solve_mwhvc(
                    hypergraph, config=config, executor="fastpath",
                    verify=False,
                )
                for hypergraph in instances
            ]
            t1 = time.perf_counter()
            batched = solve_mwhvc_batch(
                instances, config=config, verify=False
            )
            t2 = time.perf_counter()
            sequential_times.append(t1 - t0)
            batch_times.append(t2 - t1)
        return sequential, batched, min(sequential_times), min(batch_times)

    sequential, batched, sequential_s, batch_s = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )

    for position, (solo, from_batch) in enumerate(
        zip(sequential, batched)
    ):
        for attribute in OBSERVABLES:
            assert getattr(from_batch, attribute) == getattr(
                solo, attribute
            ), f"batch[{position}] drifted from solo fastpath: {attribute}"
    # Cross-check a sample against the Fraction cores as well: the
    # chain batch == fastpath == lockstep must close exactly.
    for position in (0, BATCH_SIZE // 2, BATCH_SIZE - 1):
        lock = solve_mwhvc(
            instances[position], config=config, executor="lockstep",
            verify=False,
        )
        for attribute in OBSERVABLES:
            assert getattr(batched[position], attribute) == getattr(
                lock, attribute
            ), f"batch[{position}] drifted from lockstep: {attribute}"

    speedup = sequential_s / batch_s
    iterations = [result.iterations for result in sequential]
    table = render_table(
        ["mode", "seconds", "throughput vs sequential"],
        [
            ["batched arena", f"{batch_s:.3f}", f"{speedup:.2f}x"],
            ["sequential fastpath", f"{sequential_s:.3f}", "1.00x"],
        ],
        title=(
            f"E10 — batched solve of {BATCH_SIZE} instances "
            f"(n={N}, {DEGREE}-regular, rank={RANK}, W<={MAX_WEIGHT}, "
            f"eps={EPSILON}, iterations "
            f"{min(iterations)}-{max(iterations)})"
        ),
    )
    publish("batch_throughput", table)
    publish_json(
        "batch_throughput",
        {
            "gate": "batch_vs_sequential_throughput",
            "instances": BATCH_SIZE,
            "n": N,
            "degree": DEGREE,
            "rank": RANK,
            "max_weight": MAX_WEIGHT,
            "epsilon": str(EPSILON),
            "iterations_min": min(iterations),
            "iterations_max": max(iterations),
            "sequential_seconds": round(sequential_s, 6),
            "batch_seconds": round(batch_s, 6),
            "speedup": round(speedup, 3),
            "floor": THROUGHPUT_FLOOR,
            "bit_identical": True,
        },
    )
    assert speedup >= THROUGHPUT_FLOOR, (
        f"batched throughput {speedup:.2f}x below the "
        f"{THROUGHPUT_FLOOR}x floor"
    )


def test_parallel_jobs_gate(benchmark):
    """Acceptance: ``jobs=2`` >= 1.5x ``jobs=1`` on the 64-instance
    suite, bit-identical results.

    The floor is enforced only on multi-core machines (a single-core
    box cannot express multiprocess speedup); the measurement itself
    always runs and lands in the trend series, so a single-core record
    carries the observed ratio with a null floor instead of a
    vacuously failing gate.
    """
    instances = build_batch(max_weight=PARALLEL_MAX_WEIGHT)
    config = AlgorithmConfig(epsilon=PARALLEL_EPSILON)
    eligibility = [
        arena_eligibility(hypergraph, config) for hypergraph in instances
    ]
    assert all(flag for flag, _ in eligibility), (
        "parallel profile must stay on the int64 arena lane: "
        f"{[reason for flag, reason in eligibility if not flag]}"
    )
    cpus = os.cpu_count() or 1
    gated = cpus >= 2

    # Warm-up: numpy kernels on the in-process side, pool spawn and
    # per-worker imports on the parallel side.
    solve_mwhvc_batch(instances[:4], config=config, verify=False)
    solve_mwhvc_batch(
        instances[:4], config=config, verify=False, jobs=PARALLEL_JOBS
    )

    def run_pair():
        sequential_times = []
        parallel_times = []
        for _ in range(2):
            t0 = time.perf_counter()
            sequential = solve_mwhvc_batch(
                instances, config=config, verify=False
            )
            t1 = time.perf_counter()
            parallel = solve_mwhvc_batch(
                instances, config=config, verify=False, jobs=PARALLEL_JOBS
            )
            t2 = time.perf_counter()
            sequential_times.append(t1 - t0)
            parallel_times.append(t2 - t1)
        return sequential, parallel, min(sequential_times), min(parallel_times)

    sequential, parallel, sequential_s, parallel_s = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )
    shutdown_pool()

    for position, (solo, sharded) in enumerate(zip(sequential, parallel)):
        for attribute in OBSERVABLES:
            assert getattr(sharded, attribute) == getattr(
                solo, attribute
            ), f"jobs={PARALLEL_JOBS}[{position}] drifted: {attribute}"
    workers = {result.worker for result in parallel}
    assert workers == set(range(PARALLEL_JOBS)), workers

    speedup = sequential_s / parallel_s
    table = render_table(
        ["mode", "seconds", "throughput vs jobs=1"],
        [
            [
                f"jobs={PARALLEL_JOBS} sharded",
                f"{parallel_s:.3f}",
                f"{speedup:.2f}x",
            ],
            ["jobs=1 arena", f"{sequential_s:.3f}", "1.00x"],
        ],
        title=(
            f"E11 — multiprocess batch of {BATCH_SIZE} instances "
            f"(n={N}, {DEGREE}-regular, rank={RANK}, "
            f"W<={PARALLEL_MAX_WEIGHT}, eps={PARALLEL_EPSILON}, "
            f"jobs={PARALLEL_JOBS}, {cpus} cpu(s))"
        ),
    )
    publish("batch_parallel_throughput", table)
    publish_json(
        "batch_parallel_throughput",
        {
            "gate": "batch_parallel_vs_inprocess_throughput",
            "instances": BATCH_SIZE,
            "n": N,
            "degree": DEGREE,
            "rank": RANK,
            "max_weight": PARALLEL_MAX_WEIGHT,
            "epsilon": str(PARALLEL_EPSILON),
            "jobs": PARALLEL_JOBS,
            "cpus": cpus,
            "sequential_seconds": round(sequential_s, 6),
            "parallel_seconds": round(parallel_s, 6),
            "speedup": round(speedup, 3),
            "floor": PARALLEL_FLOOR if gated else None,
            "gated": gated,
            "bit_identical": True,
        },
    )
    if gated:
        assert speedup >= PARALLEL_FLOOR, (
            f"jobs={PARALLEL_JOBS} throughput {speedup:.2f}x below the "
            f"{PARALLEL_FLOOR}x floor on {cpus} cpus"
        )


def test_batch_verified_results_match_sequential_verified():
    """With verification on, certificates exist and results still agree."""
    instances = build_batch()[:4]
    config = AlgorithmConfig(epsilon=EPSILON)
    batched = solve_mwhvc_batch(instances, config=config)
    for hypergraph, result in zip(instances, batched):
        assert result.certificate is not None
        solo = solve_mwhvc(hypergraph, config=config, executor="fastpath")
        assert result.cover == solo.cover
        assert result.dual == solo.dual
