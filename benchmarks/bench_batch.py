"""E10 — batched arena executor vs a sequential fastpath loop.

The batched executor (:func:`repro.core.solver.solve_mwhvc_batch`)
packs K independent instances into one shared CSR arena and advances
them together, one vectorized sweep per iteration.  This experiment is
its acceptance gate:

* **exactness** — every instance in the batch must be bit-identical to
  its solo ``executor="fastpath"`` run *and* to the Fraction-core
  lockstep run (cover, weight, duals, iterations, rounds, levels,
  statistics);
* **throughput** — on 32 seeded instances the batched solve must be at
  least 2x faster than the sequential fastpath loop (timed with
  ``verify=False`` on both sides, like the executor speedup gate, so
  the shared certificate cost does not mask the comparison).

The profile uses 9-regular rank-3 instances with weights up to 10^4
and ``eps = 1/200``: parameters chosen to sit comfortably inside the
arena's int64 headroom (no spills — asserted) with real per-iteration
transition depth.  Since PR 3 the *sequential* reference is itself
machine-width (the solo fastpath loop runs the same int64 kernel lane
per instance), so the arena's edge is amortizing per-instance kernel
dispatch — the profile therefore sits in the batch API's actual
regime, many small instances (64 x n=60), where that dispatch
overhead dominates a solo run.

E11 (``test_parallel_jobs_gate``) stacks the multiprocess shards on
top: the same 64-instance suite solved with ``jobs=2`` must be >=
1.5x the in-process ``jobs=1`` arena on multi-core machines (the
gate's floor is recorded as null on single-core boxes, where the
measurement still runs and feeds the trend series) — and bit-identical
either way.

E12 (``test_stream_steal_gate``) attacks cost misestimation.  A
skewed 64-instance batch carries one **straggler** — a
Fraction-weighted instance that rides the big-int lane at many times
the structural ``nnz * expected-iterations`` product, next to 63
uniform-weight instances that product *over*-estimates (they
terminate in ~2 iterations).  The *naive* baseline reproduces the
pre-fix cost model (every instance priced as if it ran the int64
lane): its LPT colocates roughly half the batch behind the straggler.
Two remedies must each beat that baseline by >= 1.3x on ``jobs=2``
(multi-core; single-core boxes record the observed ratios with null
floors like E11), bit-identical throughout:

* **corrected static sharding** — the lane-aware
  :func:`repro.core.parallel.corrected_cost` estimate prices the
  straggler's big-int width up front, so static LPT isolates it;
* **streaming work stealing**
  (:class:`repro.core.stream.BatchSession`) — fixes the same skew
  dynamically even when the estimate is wrong.
"""

from __future__ import annotations

import os
import time
from fractions import Fraction

from conftest import publish, publish_json

from repro.analysis.tables import render_table
from repro.core.batch import arena_eligibility
from repro.core.parallel import shutdown_pool
from repro.core.params import AlgorithmConfig
from repro.core.solver import solve_mwhvc, solve_mwhvc_batch
from repro.hypergraph.generators import regular_hypergraph, uniform_weights

BATCH_SIZE = 64
N = 60
RANK = 3
DEGREE = 9
MAX_WEIGHT = 10_000
EPSILON = Fraction(1, 200)
THROUGHPUT_FLOOR = 2.0
PARALLEL_JOBS = 2
PARALLEL_FLOOR = 1.5
STREAM_JOBS = 2
#: E11 profile: same 64-instance shape, but deeper iteration counts
#: (tight epsilon, small weights keep the int64 arena eligible) so
#: per-instance compute dominates the fixed per-shard transport cost —
#: the regime the multiprocess path exists for.
PARALLEL_MAX_WEIGHT = 100
PARALLEL_EPSILON = Fraction(1, 5000)

OBSERVABLES = (
    "cover",
    "weight",
    "iterations",
    "rounds",
    "dual",
    "dual_total",
    "levels",
    "stats",
)


def build_batch(max_weight=MAX_WEIGHT):
    return [
        regular_hypergraph(
            N,
            RANK,
            DEGREE,
            seed=seed,
            weights=uniform_weights(N, max_weight, seed=seed + 9),
        )
        for seed in range(BATCH_SIZE)
    ]


def test_batch_throughput_and_equality_gate(benchmark):
    """Acceptance: >= 2x over the sequential loop, bit-identical results."""
    instances = build_batch()
    config = AlgorithmConfig(epsilon=EPSILON)

    eligibility = [
        arena_eligibility(hypergraph, config) for hypergraph in instances
    ]
    assert all(flag for flag, _ in eligibility), (
        "benchmark profile must run entirely in the arena lane: "
        f"{[reason for flag, reason in eligibility if not flag]}"
    )

    # Warm-up outside the timed region (numpy kernel compilation,
    # allocator effects) so both sides are measured steady-state.
    solve_mwhvc_batch(instances[:2], config=config, verify=False)
    solve_mwhvc(
        instances[0], config=config, executor="fastpath", verify=False
    )

    def run_pair():
        # Best-of-2 on both sides: a single-shot ratio on a shared CI
        # runner is too exposed to noisy neighbors for a hard gate.
        sequential_times = []
        batch_times = []
        for _ in range(2):
            t0 = time.perf_counter()
            sequential = [
                solve_mwhvc(
                    hypergraph, config=config, executor="fastpath",
                    verify=False,
                )
                for hypergraph in instances
            ]
            t1 = time.perf_counter()
            batched = solve_mwhvc_batch(
                instances, config=config, verify=False
            )
            t2 = time.perf_counter()
            sequential_times.append(t1 - t0)
            batch_times.append(t2 - t1)
        return sequential, batched, min(sequential_times), min(batch_times)

    sequential, batched, sequential_s, batch_s = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )

    for position, (solo, from_batch) in enumerate(
        zip(sequential, batched)
    ):
        for attribute in OBSERVABLES:
            assert getattr(from_batch, attribute) == getattr(
                solo, attribute
            ), f"batch[{position}] drifted from solo fastpath: {attribute}"
    # Cross-check a sample against the Fraction cores as well: the
    # chain batch == fastpath == lockstep must close exactly.
    for position in (0, BATCH_SIZE // 2, BATCH_SIZE - 1):
        lock = solve_mwhvc(
            instances[position], config=config, executor="lockstep",
            verify=False,
        )
        for attribute in OBSERVABLES:
            assert getattr(batched[position], attribute) == getattr(
                lock, attribute
            ), f"batch[{position}] drifted from lockstep: {attribute}"

    speedup = sequential_s / batch_s
    iterations = [result.iterations for result in sequential]
    table = render_table(
        ["mode", "seconds", "throughput vs sequential"],
        [
            ["batched arena", f"{batch_s:.3f}", f"{speedup:.2f}x"],
            ["sequential fastpath", f"{sequential_s:.3f}", "1.00x"],
        ],
        title=(
            f"E10 — batched solve of {BATCH_SIZE} instances "
            f"(n={N}, {DEGREE}-regular, rank={RANK}, W<={MAX_WEIGHT}, "
            f"eps={EPSILON}, iterations "
            f"{min(iterations)}-{max(iterations)})"
        ),
    )
    publish("batch_throughput", table)
    publish_json(
        "batch_throughput",
        {
            "gate": "batch_vs_sequential_throughput",
            "instances": BATCH_SIZE,
            "n": N,
            "degree": DEGREE,
            "rank": RANK,
            "max_weight": MAX_WEIGHT,
            "epsilon": str(EPSILON),
            "iterations_min": min(iterations),
            "iterations_max": max(iterations),
            "sequential_seconds": round(sequential_s, 6),
            "batch_seconds": round(batch_s, 6),
            "speedup": round(speedup, 3),
            "floor": THROUGHPUT_FLOOR,
            "bit_identical": True,
        },
    )
    assert speedup >= THROUGHPUT_FLOOR, (
        f"batched throughput {speedup:.2f}x below the "
        f"{THROUGHPUT_FLOOR}x floor"
    )


def test_parallel_jobs_gate(benchmark):
    """Acceptance: ``jobs=2`` >= 1.5x ``jobs=1`` on the 64-instance
    suite, bit-identical results.

    The floor is enforced only on multi-core machines (a single-core
    box cannot express multiprocess speedup); the measurement itself
    always runs and lands in the trend series, so a single-core record
    carries the observed ratio with a null floor instead of a
    vacuously failing gate.
    """
    instances = build_batch(max_weight=PARALLEL_MAX_WEIGHT)
    config = AlgorithmConfig(epsilon=PARALLEL_EPSILON)
    eligibility = [
        arena_eligibility(hypergraph, config) for hypergraph in instances
    ]
    assert all(flag for flag, _ in eligibility), (
        "parallel profile must stay on the int64 arena lane: "
        f"{[reason for flag, reason in eligibility if not flag]}"
    )
    cpus = os.cpu_count() or 1
    gated = cpus >= 2

    # Warm-up: numpy kernels on the in-process side, pool spawn and
    # per-worker imports on the parallel side.
    solve_mwhvc_batch(instances[:4], config=config, verify=False)
    solve_mwhvc_batch(
        instances[:4], config=config, verify=False, jobs=PARALLEL_JOBS
    )

    def run_pair():
        sequential_times = []
        parallel_times = []
        for _ in range(2):
            t0 = time.perf_counter()
            sequential = solve_mwhvc_batch(
                instances, config=config, verify=False
            )
            t1 = time.perf_counter()
            parallel = solve_mwhvc_batch(
                instances, config=config, verify=False, jobs=PARALLEL_JOBS
            )
            t2 = time.perf_counter()
            sequential_times.append(t1 - t0)
            parallel_times.append(t2 - t1)
        return sequential, parallel, min(sequential_times), min(parallel_times)

    sequential, parallel, sequential_s, parallel_s = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )
    shutdown_pool()

    for position, (solo, sharded) in enumerate(zip(sequential, parallel)):
        for attribute in OBSERVABLES:
            assert getattr(sharded, attribute) == getattr(
                solo, attribute
            ), f"jobs={PARALLEL_JOBS}[{position}] drifted: {attribute}"
    workers = {result.worker for result in parallel}
    assert workers == set(range(PARALLEL_JOBS)), workers

    speedup = sequential_s / parallel_s
    table = render_table(
        ["mode", "seconds", "throughput vs jobs=1"],
        [
            [
                f"jobs={PARALLEL_JOBS} sharded",
                f"{parallel_s:.3f}",
                f"{speedup:.2f}x",
            ],
            ["jobs=1 arena", f"{sequential_s:.3f}", "1.00x"],
        ],
        title=(
            f"E11 — multiprocess batch of {BATCH_SIZE} instances "
            f"(n={N}, {DEGREE}-regular, rank={RANK}, "
            f"W<={PARALLEL_MAX_WEIGHT}, eps={PARALLEL_EPSILON}, "
            f"jobs={PARALLEL_JOBS}, {cpus} cpu(s))"
        ),
    )
    publish("batch_parallel_throughput", table)
    publish_json(
        "batch_parallel_throughput",
        {
            "gate": "batch_parallel_vs_inprocess_throughput",
            "instances": BATCH_SIZE,
            "n": N,
            "degree": DEGREE,
            "rank": RANK,
            "max_weight": PARALLEL_MAX_WEIGHT,
            "epsilon": str(PARALLEL_EPSILON),
            "jobs": PARALLEL_JOBS,
            "cpus": cpus,
            "sequential_seconds": round(sequential_s, 6),
            "parallel_seconds": round(parallel_s, 6),
            "speedup": round(speedup, 3),
            "floor": PARALLEL_FLOOR if gated else None,
            "gated": gated,
            "bit_identical": True,
        },
    )
    if gated:
        assert speedup >= PARALLEL_FLOOR, (
            f"jobs={PARALLEL_JOBS} throughput {speedup:.2f}x below the "
            f"{PARALLEL_FLOOR}x floor on {cpus} cpus"
        )


STREAM_FLOOR = 1.3
#: E12 normal-instance size: large enough that real solve time (a few
#: ms each) dominates per-shard scheduling overhead, keeping the gate
#: about schedule quality rather than dispatch constants.
STREAM_NORMAL_N = 600
#: The straggler has the *same structure* as a normal instance — a
#: lane-blind cost model prices it identically — so naive static LPT
#: packs half the batch behind it.
STREAM_STRAGGLER_N = STREAM_NORMAL_N
#: Bit size of the straggler's rational-weight numerators.  Big-int
#: lane cost scales with integer width (every bid/dual carries the
#: weights' magnitude), so this dial sets the straggler's actual cost
#: to roughly the whole uniform-weight remainder — ~60x its
#: structural estimate — without touching a single quantity the cost
#: model can see.
STREAM_WEIGHT_BITS = 36_000
#: Denominators of the straggler's rational weights: twenty mid-size
#: primes whose lcm (~140 bits) exceeds the two-limb headroom (2^93),
#: pinning the straggler to the big-int lane regardless of the
#: numerator dial above.
STREAM_PRIMES = (
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197,
)


def build_skewed_batch():
    """One misestimated straggler followed by 63 overestimated normals.

    The normals have uniform weight 1: everything is tight after ~2
    iterations, a fraction of the ``log2(Delta) + z`` iteration proxy.
    The straggler is structurally identical to a normal but carries
    huge rational weights: the lcm of its denominators exceeds every
    machine-lane headroom (big-int lane), and its ~36k-bit numerators
    make every big-int operation proportionally expensive — two
    effects the bare ``nnz * expected-iterations`` product misses in
    opposite directions (the lane-aware estimate now prices both; the
    gate's naive baseline deliberately strips that correction).  Net
    skew: the straggler's actual cost is roughly the 63 normals'
    combined worker time — the regime where lane-blind sharding loses
    the most: LPT parks half the normals behind the straggler, while
    either remedy moves them all to the other worker.
    """
    straggler_weights = [
        Fraction(
            (1 << STREAM_WEIGHT_BITS) + 3 ** (i % 16) * (7 * i + 1),
            STREAM_PRIMES[i % len(STREAM_PRIMES)],
        )
        for i in range(STREAM_STRAGGLER_N)
    ]
    straggler = regular_hypergraph(
        STREAM_STRAGGLER_N, RANK, DEGREE, seed=63,
        weights=straggler_weights,
    )
    normals = [
        regular_hypergraph(
            STREAM_NORMAL_N, RANK, DEGREE, seed=seed,
            weights=[1] * STREAM_NORMAL_N,
        )
        for seed in range(BATCH_SIZE - 1)
    ]
    return [straggler] + normals


def test_stream_steal_gate(benchmark):
    """Acceptance: on the skewed batch, both the lane-aware corrected
    static sharding and the streaming work-stealing session must beat
    the naive (lane-blind) static baseline by >= 1.3x on ``jobs=2``,
    bit-identical results.

    The naive baseline reinstates the pre-fix estimator — every
    instance priced at the int64 lane factor with no learned
    correction — by patching :mod:`repro.core.parallel`'s
    ``corrected_cost`` for the baseline run only.  Like E11, the
    floors are enforced only on multi-core machines; the measurements
    always run and feed the trend series.
    """
    import repro.core.parallel as parallel_module
    from repro.core.parallel import (
        COST_MODEL,
        estimated_cost,
        run_fastpath_batch_parallel,
    )
    from repro.core.stream import BatchSession

    instances = build_skewed_batch()
    config = AlgorithmConfig(epsilon=PARALLEL_EPSILON)
    cpus = os.cpu_count() or 1
    gated = cpus >= 2

    def naive_cost(hypergraph, config, model=None):
        return estimated_cost(hypergraph, config, lane="int64")

    def run_stream():
        with BatchSession(
            config, jobs=STREAM_JOBS, verify=False
        ) as session:
            tickets = [
                session.submit(hypergraph) for hypergraph in instances
            ]
            results = [ticket.result() for ticket in tickets]
            return results, dict(session.stats)

    # Warm-up: pool spawn + per-worker imports on both sides.
    run_fastpath_batch_parallel(
        instances[1:5], config, verify=False, jobs=STREAM_JOBS
    )
    with BatchSession(config, jobs=STREAM_JOBS, verify=False) as session:
        for hypergraph in instances[1:5]:
            session.submit(hypergraph)

    def run_triple():
        naive_times = []
        corrected_times = []
        stream_times = []
        for _ in range(2):
            # Naive baseline: lane-blind costs, no learned rates.
            original = parallel_module.corrected_cost
            parallel_module.corrected_cost = naive_cost
            COST_MODEL.reset()
            try:
                t0 = time.perf_counter()
                naive = run_fastpath_batch_parallel(
                    instances, config, verify=False, jobs=STREAM_JOBS
                )
                t1 = time.perf_counter()
            finally:
                parallel_module.corrected_cost = original
            # Corrected static: the lane-aware estimate, from a cold
            # model so the run is deterministic.
            COST_MODEL.reset()
            t2 = time.perf_counter()
            corrected = run_fastpath_batch_parallel(
                instances, config, verify=False, jobs=STREAM_JOBS
            )
            t3 = time.perf_counter()
            streamed, stats = run_stream()
            t4 = time.perf_counter()
            naive_times.append(t1 - t0)
            corrected_times.append(t3 - t2)
            stream_times.append(t4 - t3)
        return (
            naive, corrected, streamed, stats,
            min(naive_times), min(corrected_times), min(stream_times),
        )

    naive, corrected, streamed, stats, naive_s, corrected_s, stream_s = (
        benchmark.pedantic(run_triple, rounds=1, iterations=1)
    )
    shutdown_pool()
    COST_MODEL.reset()

    reference = solve_mwhvc_batch(instances, config=config, verify=False)
    for position, (solo, via_naive, via_corrected, via_stream) in enumerate(
        zip(reference, naive, corrected, streamed)
    ):
        for attribute in OBSERVABLES:
            assert getattr(via_naive, attribute) == getattr(
                solo, attribute
            ), f"naive static[{position}] drifted: {attribute}"
            assert getattr(via_corrected, attribute) == getattr(
                solo, attribute
            ), f"corrected static[{position}] drifted: {attribute}"
            assert getattr(via_stream, attribute) == getattr(
                solo, attribute
            ), f"stream[{position}] drifted: {attribute}"
    assert reference[0].lane == "bigint", (
        "the straggler must ride the big-int lane for the skew to "
        f"exist, got {reference[0].lane}"
    )
    assert stats["shards"] > 2, stats

    speedup = naive_s / stream_s
    corrected_speedup = naive_s / corrected_s
    table = render_table(
        ["mode", "seconds", "throughput vs naive shards"],
        [
            [
                "streaming + work stealing",
                f"{stream_s:.3f}",
                f"{speedup:.2f}x",
            ],
            [
                "corrected static shards",
                f"{corrected_s:.3f}",
                f"{corrected_speedup:.2f}x",
            ],
            ["naive (lane-blind) shards", f"{naive_s:.3f}", "1.00x"],
        ],
        title=(
            f"E12 — skewed batch of {BATCH_SIZE} instances "
            f"(one rational-weight straggler n={STREAM_STRAGGLER_N}, "
            f"{BATCH_SIZE - 1} x n={STREAM_NORMAL_N} w=1, "
            f"eps={PARALLEL_EPSILON}, jobs={STREAM_JOBS}, {cpus} cpu(s), "
            f"{stats['steals']} steals / {stats['splits']} splits)"
        ),
    )
    publish("batch_stream_steal", table)
    publish_json(
        "batch_stream_steal",
        {
            "gate": "stream_steal_vs_static_sharding",
            "instances": BATCH_SIZE,
            "n": STREAM_NORMAL_N,
            "straggler_n": STREAM_STRAGGLER_N,
            "degree": DEGREE,
            "rank": RANK,
            "epsilon": str(PARALLEL_EPSILON),
            "jobs": STREAM_JOBS,
            "cpus": cpus,
            "naive_seconds": round(naive_s, 6),
            "corrected_seconds": round(corrected_s, 6),
            "stream_seconds": round(stream_s, 6),
            "speedup": round(speedup, 3),
            "corrected_speedup": round(corrected_speedup, 3),
            "steals": stats["steals"],
            "splits": stats["splits"],
            "shards": stats["shards"],
            "floor": STREAM_FLOOR if gated else None,
            "gated": gated,
            "bit_identical": True,
        },
    )
    if gated:
        assert speedup >= STREAM_FLOOR, (
            f"work-stealing throughput {speedup:.2f}x below the "
            f"{STREAM_FLOOR}x floor over naive sharding on {cpus} cpus"
        )
        assert corrected_speedup >= STREAM_FLOOR, (
            f"corrected-cost sharding {corrected_speedup:.2f}x below "
            f"the {STREAM_FLOOR}x floor over naive sharding on "
            f"{cpus} cpus"
        )


def test_batch_verified_results_match_sequential_verified():
    """With verification on, certificates exist and results still agree."""
    instances = build_batch()[:4]
    config = AlgorithmConfig(epsilon=EPSILON)
    batched = solve_mwhvc_batch(instances, config=config)
    for hypergraph, result in zip(instances, batched):
        assert result.certificate is not None
        solo = solve_mwhvc(hypergraph, config=config, executor="fastpath")
        assert result.cover == solo.cover
        assert result.dual == solo.dual
