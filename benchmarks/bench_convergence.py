"""E10 (extension) — convergence profile of the primal-dual race.

Not a table from the paper, but the dynamic the Section 4 analysis
describes: raises push duals geometrically while stuck iterations are
absorbed within ~alpha steps per level.  Using the observer API we
measure, per degree:

* the *coverage half-life* (iterations to cover half the edges);
* the tail (iterations from 90% coverage to termination);
* the fraction of dual value accumulated in the first half of the run.

Shape criteria asserted:
* coverage is monotone and completes;
* the half-life grows (at most) logarithmically with Δ — matching the
  geometric dual growth of the raise mechanism;
* dual accumulation is front-loaded (>= 40% of the final dual in the
  first half of iterations) at every Δ.
"""

from __future__ import annotations

from fractions import Fraction

from conftest import publish

from repro.analysis.tables import render_table
from repro.core import ConvergenceRecorder
from repro.core.solver import solve_mwhvc
from repro.hypergraph.generators import regular_hypergraph, uniform_weights

RANK = 3
N = 252
DEGREES = (4, 12, 36, 96)
EPSILON = Fraction(1, 4)


def run_experiment() -> dict:
    rows = []
    checks = []
    for degree in DEGREES:
        weights = uniform_weights(N, 40, seed=degree)
        hypergraph = regular_hypergraph(
            N, RANK, degree, seed=1, weights=weights
        )
        recorder = ConvergenceRecorder()
        result = solve_mwhvc(hypergraph, EPSILON, observer=recorder)
        half_life = recorder.half_coverage_iteration()
        curve = recorder.coverage_curve()
        tail_start = next(
            iteration for iteration, fraction in curve if fraction >= 0.9
        )
        tail = recorder.iterations - tail_start
        dual_values = [value for _, value in recorder.dual_curve()]
        halfway = dual_values[len(dual_values) // 2]
        front_loaded = halfway / dual_values[-1]
        rows.append(
            [
                degree,
                recorder.iterations,
                half_life,
                tail,
                round(front_loaded, 3),
                recorder.sparkline(width=30),
            ]
        )
        checks.append((degree, recorder, result, half_life, front_loaded))
    return {"rows": rows, "checks": checks}


def test_convergence_profile(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = render_table(
        [
            "Delta",
            "iterations",
            "half-coverage iter",
            "tail (90%->end)",
            "dual@midpoint / final",
            "coverage sparkline",
        ],
        data["rows"],
        title=(
            f"E10 — convergence profile (regular rank-{RANK}, n={N}, "
            f"eps={EPSILON})"
        ),
    )
    publish("convergence_profile", table)

    import math

    for degree, recorder, result, half_life, front_loaded in data["checks"]:
        fractions_seen = [f for _, f in recorder.coverage_curve()]
        assert fractions_seen[-1] == 1.0
        assert fractions_seen == sorted(fractions_seen)
        assert half_life is not None
        assert half_life <= 4 * math.log2(max(4, degree))
        assert front_loaded >= 0.4


def test_benchmark_observed_solve(benchmark):
    """Timing anchor: the observer's overhead on a mid-size solve."""
    weights = uniform_weights(N, 40, seed=12)
    hypergraph = regular_hypergraph(N, RANK, 36, seed=1, weights=weights)

    def observed():
        recorder = ConvergenceRecorder()
        return solve_mwhvc(hypergraph, EPSILON, observer=recorder)

    benchmark(observed)
