"""E13 — TCP serving front end vs the single-client stdin baseline.

``repro-cover serve --tcp`` (:mod:`repro.core.server`) multiplexes
concurrent clients over one :class:`~repro.core.stream.BatchSession`.
This experiment is its acceptance gate:

* **exactness** — every response body must be bit-identical to a solo
  ``executor="fastpath"`` run of the same instance, across all clients
  and lanes (provenance fields aside);
* **throughput** — 8 concurrent TCP clients pushing a mixed corpus
  must reach at least 1.0x the throughput of the pre-existing
  single-client stdin front end (``repro-cover serve --json`` fed the
  same corpus as ``.hg`` paths) on multi-core machines.  The network
  tier may not cost concurrency what it buys in overlap.  Single-core
  boxes record the observed ratio with a null floor, like E11/E12;
* **latency** — client-observed per-request p50/p95/p99 land in the
  published record (and the ``BENCH_3.json`` trend series), so tail
  regressions are visible across commits even where the throughput
  gate alone would stay green.

The corpus deliberately mixes lanes: mostly int64-lane integer-weight
instances, a few small-denominator rationals (multi-limb lanes), and a
few spill-forcing stragglers whose prime denominators push the lcm
past every machine-lane headroom (big-int lane) with ~3000-bit
numerators — wide enough to dominate a shard, narrow enough that the
``.hg`` decimal tokens stay inside CPython's default int<->str guard
the stdin baseline runs under.
"""

from __future__ import annotations

import asyncio
import os
import sys
import time
from fractions import Fraction

from conftest import publish, publish_json

from repro.analysis.tables import render_table
from repro.core.params import AlgorithmConfig
from repro.core.server import CoverClient, CoverServer, _percentile
from repro.core.solver import solve_mwhvc
from repro.hypergraph import io as hg_io
from repro.hypergraph.generators import regular_hypergraph, uniform_weights

N = 60
RANK = 3
DEGREE = 9
EPSILON = Fraction(1, 200)
CLIENTS = 8
INT_INSTANCES = 32
RATIONAL_INSTANCES = 8
SPILL_INSTANCES = 8
SPILL_BITS = 3_000
SERVE_FLOOR = 1.0
SMALL_DENOMINATORS = (2, 3, 4, 5, 6, 7, 8, 9)
SPILL_PRIMES = (
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197,
)

OBSERVABLE_KEYS = ("cover", "weight", "iterations", "rounds", "dual_total")


def build_corpus():
    """48 mixed-lane instances: 32 int64, 8 multi-limb, 8 big-int."""
    corpus = [
        regular_hypergraph(
            N, RANK, DEGREE, seed=seed,
            weights=uniform_weights(N, 10_000, seed=seed + 9),
        )
        for seed in range(INT_INSTANCES)
    ]
    for seed in range(RATIONAL_INSTANCES):
        weights = [
            Fraction(3 * i + 2, SMALL_DENOMINATORS[i % len(SMALL_DENOMINATORS)])
            for i in range(N)
        ]
        corpus.append(
            regular_hypergraph(
                N, RANK, DEGREE, seed=100 + seed, weights=weights
            )
        )
    for seed in range(SPILL_INSTANCES):
        weights = [
            Fraction(
                (1 << SPILL_BITS) + 7 * i + seed + 1,
                SPILL_PRIMES[i % len(SPILL_PRIMES)],
            )
            for i in range(N)
        ]
        corpus.append(
            regular_hypergraph(
                N, RANK, DEGREE, seed=200 + seed, weights=weights
            )
        )
    return corpus


def solo_reference(corpus, config):
    references = []
    for hypergraph in corpus:
        result = solve_mwhvc(hypergraph, config=config, executor="fastpath")
        data = result.as_dict()
        data.pop("lane", None)
        data.pop("worker", None)
        references.append(data)
    return references


def encode_corpus(corpus):
    """Pre-encoded request lines, one per instance.

    A load generator builds its corpus up front; what the timed region
    measures is the serving path, not the generator's serialization —
    symmetric with the stdin baseline, whose ``.hg`` files are written
    before the clock starts.
    """
    from repro.core.server import instance_payload

    return [
        CoverClient.encode(
            {"op": "solve", "id": f"r{position}", **instance_payload(hypergraph)}
        )
        for position, hypergraph in enumerate(corpus)
    ]


async def drive_clients(encoded, config):
    """One concurrent serving pass; returns (responses, latencies, stats)."""
    server = CoverServer(config=config, jobs=2, max_batch=8)
    host, port = await server.start()
    try:
        clients = await asyncio.gather(
            *[CoverClient.connect(host, port) for _ in range(CLIENTS)]
        )
        try:
            latencies = [None] * len(encoded)
            responses = [None] * len(encoded)

            async def run_one(position):
                key, line = encoded[position]
                started = time.perf_counter()
                response = await clients[position % CLIENTS].request_encoded(
                    key, line
                )
                latencies[position] = time.perf_counter() - started
                responses[position] = response

            await asyncio.gather(
                *[run_one(position) for position in range(len(encoded))]
            )
            stats = await clients[0].stats()
        finally:
            for client in clients:
                await client.close()
    finally:
        await server.shutdown()
    return responses, latencies, stats


def run_stdin_baseline(paths, monkeypatch, capsys):
    """One single-client pass through the stdin front end."""
    import io as _io

    from repro.cli import main

    monkeypatch.setattr("sys.stdin", _io.StringIO("\n".join(paths) + "\n"))
    code = main([
        "serve", "--jobs", "2", "--json", "--epsilon", str(EPSILON),
    ])
    captured = capsys.readouterr()
    assert code == 0, captured.err
    lines = [line for line in captured.out.splitlines() if line]
    assert len(lines) == len(paths)


def test_serve_concurrent_latency_gate(benchmark, tmp_path, monkeypatch, capsys):
    """Acceptance: 8 concurrent TCP clients >= 1.0x the stdin
    single-client front end on the mixed corpus (multi-core; observed
    ratio with a null floor on single-core boxes), bit-identical
    responses, published latency percentiles."""
    corpus = build_corpus()
    config = AlgorithmConfig(epsilon=EPSILON)
    cpus = os.cpu_count() or 1
    gated = cpus >= 2

    paths = []
    for position, hypergraph in enumerate(corpus):
        path = tmp_path / f"instance{position:03d}.hg"
        hg_io.save(hypergraph, path)
        paths.append(str(path))

    encoded = encode_corpus(corpus)

    # Warm-up: pool spawn + per-worker imports on both front ends.
    asyncio.run(drive_clients(encoded[:4], config))
    run_stdin_baseline(paths[:4], monkeypatch, capsys)

    def run_pair():
        stdin_times = []
        tcp_times = []
        for _ in range(2):
            t0 = time.perf_counter()
            run_stdin_baseline(paths, monkeypatch, capsys)
            t1 = time.perf_counter()
            responses, latencies, stats = asyncio.run(
                drive_clients(encoded, config)
            )
            t2 = time.perf_counter()
            stdin_times.append(t1 - t0)
            tcp_times.append(t2 - t1)
        return responses, latencies, stats, min(stdin_times), min(tcp_times)

    responses, latencies, stats, stdin_s, tcp_s = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )

    references = solo_reference(corpus, config)
    lanes = set()
    for position, (response, reference) in enumerate(
        zip(responses, references)
    ):
        assert response["ok"], response
        body = dict(response["result"])
        lanes.add(body.pop("lane", None))
        body.pop("worker", None)
        assert body == reference, (
            f"response[{position}] drifted from solo fastpath"
        )
    assert "bigint" in lanes, (
        f"the spill stragglers must ride the big-int lane, saw {lanes}"
    )

    ordered = sorted(latencies)
    p50 = _percentile(ordered, 0.50) * 1e3
    p95 = _percentile(ordered, 0.95) * 1e3
    p99 = _percentile(ordered, 0.99) * 1e3
    throughput = len(corpus) / tcp_s
    baseline = len(corpus) / stdin_s
    speedup = throughput / baseline

    table = render_table(
        ["mode", "seconds", "req/s", "vs stdin"],
        [
            [
                f"tcp x{CLIENTS} clients",
                f"{tcp_s:.3f}",
                f"{throughput:.1f}",
                f"{speedup:.2f}x",
            ],
            ["stdin single client", f"{stdin_s:.3f}", f"{baseline:.1f}", "1.00x"],
        ],
        title=(
            f"E13 — serving {len(corpus)} mixed-lane instances "
            f"(n={N}, eps={EPSILON}, {CLIENTS} clients, jobs=2, "
            f"{cpus} cpu(s); latency p50/p95/p99 "
            f"{p50:.1f}/{p95:.1f}/{p99:.1f} ms)"
        ),
    )
    publish("serve_latency", table)
    publish_json(
        "serve_latency",
        {
            "gate": "serve_concurrent_vs_stdin_throughput",
            "instances": len(corpus),
            "clients": CLIENTS,
            "n": N,
            "epsilon": str(EPSILON),
            "spill_instances": SPILL_INSTANCES,
            "spill_bits": SPILL_BITS,
            "cpus": cpus,
            "stdin_seconds": round(stdin_s, 6),
            "tcp_seconds": round(tcp_s, 6),
            "throughput_rps": round(throughput, 3),
            "baseline_rps": round(baseline, 3),
            "speedup": round(speedup, 3),
            "p50_ms": round(p50, 3),
            "p95_ms": round(p95, 3),
            "p99_ms": round(p99, 3),
            "server_latency": stats["latency"],
            "session_stats": stats["session"]["stats"],
            "floor": SERVE_FLOOR if gated else None,
            "gated": gated,
            "bit_identical": True,
        },
    )
    if gated:
        assert speedup >= SERVE_FLOOR, (
            f"concurrent serving {speedup:.2f}x below the "
            f"{SERVE_FLOOR}x stdin-baseline floor on {cpus} cpus"
        )
