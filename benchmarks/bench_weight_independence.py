"""E4 — Abstract / §1.2: round complexity independent of vertex weights.

The paper's headline distinction from prior work: the algorithm's round
count does not depend on W (the weight spread).  We sweep W over six
orders of magnitude on a fixed topology with log-uniform weights and
compare three algorithms:

* this work — rounds must stay (near-)flat;
* dual doubling ([13]/[18] family) — rounds grow ~ log W;
* KVY in exact-f mode (eps = 1/(nW)) — rounds grow with log(1/eps),
  i.e. with log W.

Shape criteria asserted:
* this work's rounds vary by at most a small additive band across the
  entire sweep;
* both weight-dependent baselines grow by at least 2x from W=1 to
  W=10^6 while this work does not.
"""

from __future__ import annotations

from fractions import Fraction

from conftest import publish

from repro.analysis.tables import render_table
from repro.baselines.dual_doubling import dual_doubling_cover
from repro.baselines.kvy import kvy_cover
from repro.baselines.registry import this_work
from repro.hypergraph.generators import (
    geometric_weights,
    regular_hypergraph,
)

N = 240
RANK = 3
DEGREE = 12
EPSILON = Fraction(1, 4)
# W = 1 (unit weights) is excluded: it is a degenerate easy case for
# *every* algorithm and says nothing about weight dependence.
SPREADS = (10, 1_000, 100_000, 10_000_000)
SEEDS = (0, 1)


def run_experiment() -> dict:
    topology = {
        seed: regular_hypergraph(N, RANK, DEGREE, seed=seed)
        for seed in SEEDS
    }
    rows = []
    ours_rounds = []
    doubling_rounds = []
    kvy_rounds = []
    for spread in SPREADS:
        ours, doubling, kvy = [], [], []
        for seed in SEEDS:
            weights = geometric_weights(N, spread, seed=seed + 31)
            hypergraph = topology[seed].reweighted(weights)
            ours.append(this_work(hypergraph, EPSILON).rounds)
            doubling.append(dual_doubling_cover(hypergraph).rounds)
            kvy.append(
                kvy_cover(
                    hypergraph, Fraction(1, N * max(weights) + 1)
                ).rounds
            )
        rows.append(
            [
                spread,
                sum(ours) / len(ours),
                sum(doubling) / len(doubling),
                sum(kvy) / len(kvy),
            ]
        )
        ours_rounds.append(sum(ours) / len(ours))
        doubling_rounds.append(sum(doubling) / len(doubling))
        kvy_rounds.append(sum(kvy) / len(kvy))
    return {
        "rows": rows,
        "ours": ours_rounds,
        "doubling": doubling_rounds,
        "kvy": kvy_rounds,
    }


def test_weight_independence(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = render_table(
        [
            "W (weight spread)",
            "this work rounds",
            "dual-doubling rounds",
            "KVY f-approx rounds",
        ],
        data["rows"],
        title=(
            f"E4 — weight independence (regular rank-{RANK} hypergraph, "
            f"n={N}, Delta={DEGREE}, eps={EPSILON}, log-uniform weights)"
        ),
    )
    publish("weight_independence", table)

    ours = data["ours"]
    doubling = data["doubling"]
    kvy = data["kvy"]
    # This work: flat within a small band over 6 orders of magnitude.
    assert max(ours) - min(ours) <= 10
    assert max(ours) <= 1.5 * min(ours)
    # Weight-dependent baselines: clear additive log-W growth.
    assert doubling[-1] >= doubling[0] + 12
    assert all(b >= a for a, b in zip(doubling, doubling[1:]))
    assert kvy[-1] >= kvy[0] + 6


def test_benchmark_widest_spread(benchmark):
    """Timing anchor at W = 10^6."""
    weights = geometric_weights(N, 1_000_000, seed=31)
    hypergraph = regular_hypergraph(
        N, RANK, DEGREE, seed=0, weights=weights
    )
    benchmark(lambda: this_work(hypergraph, EPSILON))
