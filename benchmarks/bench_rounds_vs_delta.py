"""E3 — Theorem 9 / Corollary 11: rounds scale as O(log Δ / log log Δ).

Two degree sweeps with everything else fixed:

* **regular series** — rank-3 degree-regular hypergraphs, Δ in 4..96
  (dense, every vertex at the max degree);
* **star series** — rank-3 stars with hub degree Δ up to 4096.  This
  series is a *negative control*: the iteration-0 normalization
  ``bid0 = w(v*)/(2|E(v*)|)`` makes hub-dominated instances terminate
  in a constant number of rounds at any Δ (the hub's load starts at
  exactly half its weight), so the measured Δ-dependence comes from
  genuinely spread-out (regular) instances, not from any single
  high-degree vertex.

For each series we fit the two candidate growth laws (``log Δ`` vs
``log Δ / log log Δ``) and compare measured rounds against the
Theorem 9 expression evaluated at ``gamma = 1`` (its shape without the
``1/gamma`` constant).

An honest finite-size caveat, recorded in EXPERIMENTS.md: over any
laptop-reachable sweep, ``log log Δ`` varies by barely 2x, so the two
models are near-collinear; we report both fits rather than asserting a
winner, and instead assert the strong checkable facts:

* rounds grow sublinearly in Δ (doubling Δ adds a bounded number of
  rounds);
* measured rounds stay within a constant-factor band of the
  Theorem 9 shape across both series;
* Lemma 6's per-edge raise bound holds at every Δ.
"""

from __future__ import annotations

import math
from fractions import Fraction

from conftest import publish

from repro.analysis.bounds import (
    kmw_lower_bound,
    lemma6_raise_bound,
    theorem9_round_bound,
)
from repro.analysis.fitting import compare_models
from repro.analysis.tables import render_table
from repro.baselines.registry import this_work
from repro.hypergraph.generators import (
    regular_hypergraph,
    star_hypergraph,
    uniform_weights,
)

RANK = 3
N_REGULAR = 252  # divisible by RANK for every degree
REGULAR_DEGREES = (4, 8, 16, 32, 64, 96)
STAR_DEGREES = (64, 256, 1024, 4096)
EPSILON = Fraction(1, 4)
SEEDS = (0, 1)


def _measure_regular() -> list[tuple[int, float, int]]:
    points = []
    for degree in REGULAR_DEGREES:
        per_seed = []
        raise_max = 0
        for seed in SEEDS:
            weights = uniform_weights(N_REGULAR, 40, seed=seed + degree)
            hypergraph = regular_hypergraph(
                N_REGULAR, RANK, degree, seed=seed, weights=weights
            )
            run = this_work(hypergraph, EPSILON)
            per_seed.append(run.rounds)
            raise_max = max(
                raise_max, run.extra["stats"].max_raises_per_edge
            )
        points.append((degree, sum(per_seed) / len(per_seed), raise_max))
    return points


def _measure_stars() -> list[tuple[int, float, int]]:
    points = []
    for degree in STAR_DEGREES:
        weights = uniform_weights(
            1 + degree * (RANK - 1), 40, seed=degree
        )
        hypergraph = star_hypergraph(degree, RANK, weights=weights)
        run = this_work(hypergraph, EPSILON)
        points.append(
            (degree, float(run.rounds), run.extra["stats"].max_raises_per_edge)
        )
    return points


def run_experiment() -> dict:
    regular = _measure_regular()
    stars = _measure_stars()
    rows = []
    for series, points in (("regular", regular), ("star", stars)):
        for degree, rounds, raise_max in points:
            shape = theorem9_round_bound(degree, RANK, EPSILON, gamma=1.0)
            rows.append(
                [
                    series,
                    degree,
                    rounds,
                    round(shape, 1),
                    round(kmw_lower_bound(degree), 2),
                    raise_max,
                ]
            )
    fits = {
        series: compare_models(
            [point[0] for point in points],
            [point[1] for point in points],
            ["log_delta", "log_delta_over_loglog"],
        )
        for series, points in (("regular", regular), ("star", stars))
    }
    return {"rows": rows, "regular": regular, "stars": stars, "fits": fits}


def test_rounds_vs_delta(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    fit_lines = []
    for series, fits in data["fits"].items():
        for fit in fits:
            fit_lines.append(
                f"  {series:<8} fit {fit.model:<24} slope={fit.slope:7.3f} "
                f"intercept={fit.intercept:7.3f} "
                f"residual_rms={fit.residual_rms:.3f} R^2={fit.r_squared:.4f}"
            )
    table = render_table(
        [
            "series",
            "Delta",
            "rounds",
            "Thm 9 shape (gamma=1)",
            "KMW lower shape",
            "max raises/edge",
        ],
        data["rows"],
        title=(
            f"E3 — rounds vs maximum degree (rank={RANK}, eps={EPSILON}; "
            f"regular n={N_REGULAR} over {len(SEEDS)} seeds, stars single)"
        ),
    )
    publish(
        "rounds_vs_delta",
        table + "\n\nscaling-law fits (best residual first):\n"
        + "\n".join(fit_lines),
    )

    for series, points in (("regular", data["regular"]), ("star", data["stars"])):
        degrees = [point[0] for point in points]
        rounds = [point[1] for point in points]
        span = degrees[-1] / degrees[0]
        # Sublinear: a span-x sweep in Delta costs far less than span-x
        # in rounds.
        assert rounds[-1] <= rounds[0] * max(4.0, span ** 0.5), series
        # Constant-factor band around the Theorem 9 shape.
        for degree, measured, raise_max in points:
            shape = theorem9_round_bound(degree, RANK, EPSILON, gamma=1.0)
            assert measured <= 6 * shape, (series, degree)
            assert raise_max <= math.ceil(
                lemma6_raise_bound(degree, RANK, EPSILON, 2.0)
            ) + 1, (series, degree)


def test_benchmark_largest_regular_degree(benchmark):
    """Timing anchor: a solve at the largest regular Δ of the sweep."""
    weights = uniform_weights(N_REGULAR, 40, seed=1)
    hypergraph = regular_hypergraph(
        N_REGULAR, RANK, REGULAR_DEGREES[-1], seed=0, weights=weights
    )
    benchmark(lambda: this_work(hypergraph, EPSILON))
