"""E8 — ablation of the design choices Section 3/4 calls out.

On a fixed instance family, varies one knob at a time:

* **alpha policy** — fixed 2 / fixed 4 / fixed 8 / Theorem 9 / local
  Δ(e): Lemmas 6-7 trade raise iterations (~log_alpha Δ) against stuck
  iterations (~f z alpha); the sweep shows both counters moving in
  opposite directions exactly as the analysis predicts;
* **schedule** — spec (4 rounds/iteration, Line 3e on fully halved
  bids) vs compact (2 rounds/iteration, Appendix B packing): the
  compact raise/stuck test sees same-iteration halvings one exchange
  late, which can cost extra iterations, but each iteration is half
  the rounds — a measured trade-off, net positive;
* **increment mode** — multi (Section 3) vs single (Appendix C,
  duals grow by bid/2): Lemma 22 predicts up to 2x the stuck
  iterations.

Shape criteria asserted:
* raises-per-edge decrease (weakly) as alpha grows; stuck-per-level
  increase (weakly), both within their lemma bounds;
* compact rounds ~= spec rounds / 2 (+- constant);
* single-increment iterations within ~2x of multi (Lemma 22);
* every variant's certified ratio within f + eps.
"""

from __future__ import annotations

import math
from fractions import Fraction

from conftest import publish

from repro.analysis.bounds import lemma6_raise_bound, lemma7_stuck_bound
from repro.analysis.tables import render_table
from repro.core.params import AlgorithmConfig
from repro.core.solver import solve_mwhvc
from repro.hypergraph.generators import regular_hypergraph, uniform_weights

N = 240
RANK = 3
DEGREE = 16
EPSILON = Fraction(1, 4)
SEED = 3


def build_instance():
    weights = uniform_weights(N, 50, seed=SEED)
    return regular_hypergraph(N, RANK, DEGREE, seed=SEED, weights=weights)


def run_alpha_ablation() -> dict:
    hypergraph = build_instance()
    rows = []
    series = []
    policies: list[tuple[str, AlgorithmConfig]] = [
        (
            f"fixed alpha={alpha}",
            AlgorithmConfig(
                epsilon=EPSILON, alpha_policy="fixed", fixed_alpha=alpha
            ),
        )
        for alpha in (2, 4, 8)
    ]
    policies.append(
        ("theorem9", AlgorithmConfig(epsilon=EPSILON, alpha_policy="theorem9"))
    )
    policies.append(
        ("local Δ(e)", AlgorithmConfig(epsilon=EPSILON, alpha_policy="local"))
    )
    for name, config in policies:
        result = solve_mwhvc(hypergraph, config=config)
        stats = result.stats
        alpha = float(result.alpha_max)
        rows.append(
            [
                name,
                alpha,
                result.iterations,
                result.rounds,
                stats.max_raises_per_edge,
                round(lemma6_raise_bound(DEGREE, RANK, EPSILON, alpha), 1),
                stats.max_stuck_per_vertex_level,
                math.ceil(lemma7_stuck_bound(alpha)),
                float(result.certified_ratio),
            ]
        )
        series.append((name, alpha, stats, result))
    return {"rows": rows, "series": series}


def run_schedule_and_increment_ablation() -> dict:
    hypergraph = build_instance()
    rows = []
    results = {}
    for schedule in ("spec", "compact"):
        for mode in ("multi", "single"):
            config = AlgorithmConfig(
                epsilon=EPSILON, schedule=schedule, increment_mode=mode
            )
            result = solve_mwhvc(hypergraph, config=config)
            rows.append(
                [
                    schedule,
                    mode,
                    result.iterations,
                    result.rounds,
                    result.weight,
                    float(result.certified_ratio),
                ]
            )
            results[(schedule, mode)] = result
    return {"rows": rows, "results": results}


def test_alpha_ablation(benchmark):
    data = benchmark.pedantic(run_alpha_ablation, rounds=1, iterations=1)
    table = render_table(
        [
            "alpha policy",
            "alpha",
            "iterations",
            "rounds",
            "max raises/edge",
            "Lemma 6 bound",
            "max stuck/(v,level)",
            "Lemma 7 bound",
            "certified ratio",
        ],
        data["rows"],
        title=(
            f"E8a — alpha ablation (regular rank-{RANK}, n={N}, "
            f"Delta={DEGREE}, eps={EPSILON})"
        ),
    )
    publish("ablation_alpha", table)

    fixed = [entry for entry in data["series"] if "fixed" in entry[0]]
    raises = [entry[2].max_raises_per_edge for entry in fixed]
    # Lemma 6: raising alpha cannot increase the raise count.
    assert raises == sorted(raises, reverse=True)
    for name, alpha, stats, result in data["series"]:
        assert stats.max_raises_per_edge <= math.ceil(
            lemma6_raise_bound(DEGREE, RANK, EPSILON, alpha)
        ) + 1, name
        assert stats.max_stuck_per_vertex_level <= math.ceil(
            lemma7_stuck_bound(alpha)
        ), name
        assert float(result.certified_ratio) <= RANK + float(EPSILON) + 1e-9


def test_schedule_and_increment_ablation(benchmark):
    data = benchmark.pedantic(
        run_schedule_and_increment_ablation, rounds=1, iterations=1
    )
    table = render_table(
        ["schedule", "increments", "iterations", "rounds", "weight", "ratio"],
        data["rows"],
        title=(
            f"E8b — schedule & increment-mode ablation (regular rank-{RANK}, "
            f"n={N}, Delta={DEGREE}, eps={EPSILON})"
        ),
    )
    publish("ablation_schedule", table)

    results = data["results"]
    for mode in ("multi", "single"):
        spec = results[("spec", mode)]
        compact = results[("compact", mode)]
        # Compact halves the per-iteration round cost (2 vs 4).  Its
        # raise/stuck test sees same-iteration halvings late, which can
        # cost extra *iterations* (an honest trade-off, visible in the
        # table), but never the round advantage entirely on this family.
        assert compact.rounds <= 2 * compact.iterations + 3
        assert spec.rounds >= 4 * spec.iterations
        assert compact.rounds < spec.rounds
        for result in (spec, compact):
            assert (
                float(result.certified_ratio)
                <= RANK + float(EPSILON) + 1e-9
            )
    # Appendix C: at most ~2x the iterations of the multi mode.
    for schedule in ("spec", "compact"):
        multi = results[(schedule, "multi")]
        single = results[(schedule, "single")]
        assert single.iterations <= 2 * multi.iterations + 4
        assert single.iterations >= multi.iterations


def test_benchmark_theorem9_policy(benchmark):
    hypergraph = build_instance()
    config = AlgorithmConfig(epsilon=EPSILON, alpha_policy="theorem9")
    benchmark(lambda: solve_mwhvc(hypergraph, config=config))
