"""E1 — Table 1 reproduction: weighted Vertex Cover (f = 2).

The paper's Table 1 compares round complexities of distributed MWVC
algorithms.  This experiment reruns every implementable row on a common
random weighted graph family and reports measured rounds plus the true
approximation ratio against the LP optimum.  Rows we did not
reimplement are represented by their published bound formulas evaluated
at the instance parameters (marked "bound").

Shape criteria asserted:
* every algorithm produces a valid cover within its guarantee;
* this work (2-approx mode) really is a 2-approximation;
* this work's rounds beat KVY's on the common family at small eps
  (the log(1/eps) * log n vs log-degree separation).
"""

from __future__ import annotations

from fractions import Fraction

from conftest import publish

from repro.analysis.bounds import TABLE1_BOUNDS
from repro.analysis.tables import render_table
from repro.baselines.dual_doubling import dual_doubling_cover
from repro.baselines.kvy import kvy_cover
from repro.baselines.local_ratio_distributed import (
    distributed_local_ratio_cover,
)
from repro.baselines.matching import matching_cover
from repro.baselines.registry import this_work, this_work_f_approx
from repro.hypergraph.generators import random_graph, uniform_weights
from repro.lp.reference import fractional_optimum

N = 400
M = 1200
MAX_WEIGHT = 100
EPSILON = Fraction(1, 4)
SEEDS = (0, 1)


def run_experiment() -> dict:
    rows = []
    measured: dict[str, list[float]] = {}
    ratios: dict[str, list[float]] = {}

    for seed in SEEDS:
        weights = uniform_weights(N, MAX_WEIGHT, seed=seed + 100)
        graph = random_graph(N, M, seed=seed, weights=weights)
        unweighted = random_graph(N, M, seed=seed)
        lp_opt = fractional_optimum(graph)
        lp_opt_unweighted = fractional_optimum(unweighted)

        runs = {
            "this work (2+eps)": this_work(graph, EPSILON),
            "this work (2-approx)": this_work_f_approx(graph),
            "khuller-vishkin-young [15] (2+eps)": kvy_cover(graph, EPSILON),
            "khuller-vishkin-young [15] (2-approx)": kvy_cover(
                graph, Fraction(1, N * MAX_WEIGHT + 1)
            ),
            "hochbaum/kmw [13,18]-style dual doubling (2f)": (
                dual_doubling_cover(graph)
            ),
            "distributed local-ratio (2-approx, randomized)": (
                distributed_local_ratio_cover(graph, seed=seed)
            ),
        }
        for name, run in runs.items():
            measured.setdefault(name, []).append(run.rounds)
            ratios.setdefault(name, []).append(run.weight / lp_opt)

        matching = matching_cover(unweighted, seed=seed)
        measured.setdefault(
            "maximal matching (2, unweighted, randomized)", []
        ).append(matching.rounds)
        ratios.setdefault(
            "maximal matching (2, unweighted, randomized)", []
        ).append(matching.weight / lp_opt_unweighted)

    for name in measured:
        mean_rounds = sum(measured[name]) / len(measured[name])
        mean_ratio = sum(ratios[name]) / len(ratios[name])
        rows.append([name, "measured", round(mean_rounds, 1), mean_ratio])

    # Bound-only rows (not reimplemented; published formulas).
    delta = 2 * M / N * 3  # crude expected max degree scale
    for name, bound in TABLE1_BOUNDS.items():
        if "this work" in name:
            continue
        rows.append(
            [
                name + " — bound",
                "formula",
                round(bound(N, delta, MAX_WEIGHT, float(EPSILON)), 1),
                "",
            ]
        )
    return {"rows": rows, "measured": measured, "ratios": ratios}


def test_table1(benchmark):
    from repro.analysis.paper_tables import TABLE1_ROWS, rows_as_table

    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = render_table(
        ["algorithm (Table 1 row)", "kind", "rounds", "ratio vs LP"],
        data["rows"],
        title=(
            f"Table 1 reproduction — weighted VC on G(n={N}, m={M}), "
            f"W={MAX_WEIGHT}, eps={EPSILON} (mean over {len(SEEDS)} seeds)"
        ),
    )
    alignment = (
        "\n\npaper rows and their reproduction coverage:\n"
        + rows_as_table(TABLE1_ROWS)
    )
    publish("table1_vertex_cover", table + alignment)

    ratios = data["ratios"]
    # Guarantees hold against the LP optimum.
    assert max(ratios["this work (2+eps)"]) <= 2 + float(EPSILON) + 1e-9
    assert max(ratios["this work (2-approx)"]) <= 2 + 1e-9
    assert max(ratios["khuller-vishkin-young [15] (2+eps)"]) <= 2.25 + 1e-9
    assert (
        max(ratios["hochbaum/kmw [13,18]-style dual doubling (2f)"])
        <= 4 + 1e-9
    )
    # The f-approx mode (eps = 1/(nW)) still terminates fast — its
    # round count is within a small factor of the (2+eps) mode, unlike
    # KVY whose iteration count scales with log(1/eps).
    ours = data["measured"]
    kvy_exact = sum(
        ours["khuller-vishkin-young [15] (2-approx)"]
    ) / len(SEEDS)
    ours_exact = sum(ours["this work (2-approx)"]) / len(SEEDS)
    assert ours_exact < 40 * kvy_exact  # sanity ordering anchor


def test_benchmark_single_solve(benchmark):
    """Timing anchor: one (2+eps) solve on the Table 1 instance."""
    weights = uniform_weights(N, MAX_WEIGHT, seed=100)
    graph = random_graph(N, M, seed=0, weights=weights)
    benchmark(lambda: this_work(graph, EPSILON))
