"""E16 — cold-start corpus solve from the arena store vs parse-and-pack.

PR 10's persistent arena store (:mod:`repro.hypergraph.store` /
:mod:`repro.core.corpus`) exists so that a process can go from *disk*
to *lane-executor slabs* without re-parsing ``.hg`` text or re-packing
CSR arenas.  This experiment is its acceptance gate:

* **cold start** — solving a packed 256-instance corpus through
  :func:`~repro.core.corpus.solve_corpus` (``load_arena(mmap=True)``
  segments, zero-copy structural slabs) must be at least **3x** faster
  end-to-end than the pre-existing path: parse every ``.hg`` file and
  hand the instances to :func:`~repro.core.batch.run_fastpath_batch`
  (which packs the arena itself);
* **exactness** — the two paths must produce bit-identical
  :class:`~repro.core.solver.CoverResult` lists (cover, weight, duals,
  iterations, lane), pinning that the mmap-loaded arena *is* the
  packed arena.

Both sides run ``verify=False``: the LP/duality certificate check is
identical work on either path (it re-derives everything from the
results, not from the storage), so leaving it on would only dilute the
storage differential being measured — the differential tests in
``tests/test_store.py`` already pin verified-mode equality per lane.

The corpus shape is deliberately weight-heavy (many vertices, few
edges): parse cost scales with the text's weight tokens while the
solve stays small, which is exactly the regime the store targets —
ROADMAP item 2's "preprocessed corpus, solved many times" pipelines,
where iteration-time cost is dominated by getting instances *in*, not
covered.
"""

from __future__ import annotations

import random
import time

from conftest import publish, publish_json

from repro.analysis.tables import render_table
from repro.core.batch import run_fastpath_batch
from repro.core.corpus import pack_corpus, solve_corpus
from repro.core.params import AlgorithmConfig
from repro.hypergraph import io as hg_io
from repro.hypergraph.hypergraph import Hypergraph

SEED = 0xE16
INSTANCES = 256
N = 8000
M = 12
RANK = 3
WEIGHT_LO = 10**14
SEGMENT_INSTANCES = 64
STORE_FLOOR = 3.0


def build_corpus() -> list[Hypergraph]:
    """The seeded 256-instance weight-heavy corpus."""
    rng = random.Random(SEED)
    instances = []
    for _ in range(INSTANCES):
        edges = [
            tuple(sorted(rng.sample(range(N), RANK))) for _ in range(M)
        ]
        weights = [
            rng.randint(WEIGHT_LO, 2 * WEIGHT_LO) for _ in range(N)
        ]
        instances.append(Hypergraph(N, edges, weights))
    return instances


def test_store_cold_start_gate(benchmark, tmp_path):
    """Acceptance: cold-start solve of the packed corpus >= 3x the
    parse-and-pack path, bit-identical results."""
    corpus = build_corpus()
    config = AlgorithmConfig()

    text_dir = tmp_path / "text"
    text_dir.mkdir()
    paths = []
    for position, hypergraph in enumerate(corpus):
        path = text_dir / f"instance-{position:06d}.hg"
        hg_io.save(hypergraph, path)
        paths.append(path)

    store_dir = tmp_path / "corpus"
    catalog = pack_corpus(
        (
            (f"instance-{position:06d}", hypergraph)
            for position, hypergraph in enumerate(corpus)
        ),
        store_dir,
        segment_instances=SEGMENT_INSTANCES,
    )
    segments = len(catalog.segments)
    store_bytes = sum(
        catalog.segment_path(index).stat().st_size
        for index in range(segments)
    )
    text_bytes = sum(path.stat().st_size for path in paths)

    # Warm-up: numpy/solver imports and allocator pools on both paths.
    run_fastpath_batch(corpus[:4], config, verify=False)
    next(iter(solve_corpus(store_dir, config=config, verify=False)))

    def run_pair():
        parse_times = []
        store_times = []
        baseline_results = store_results = None
        for _ in range(2):
            t0 = time.perf_counter()
            parsed = [hg_io.load(path) for path in paths]
            baseline_results = run_fastpath_batch(
                parsed, config, verify=False
            )
            t1 = time.perf_counter()
            store_results = [
                result
                for segment in solve_corpus(
                    store_dir, config=config, verify=False
                )
                for result in segment.results
            ]
            t2 = time.perf_counter()
            parse_times.append(t1 - t0)
            store_times.append(t2 - t1)
        return (
            baseline_results,
            store_results,
            min(parse_times),
            min(store_times),
        )

    baseline_results, store_results, parse_s, store_s = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )

    assert len(baseline_results) == len(store_results) == INSTANCES
    for position, (fresh, loaded) in enumerate(
        zip(baseline_results, store_results)
    ):
        assert fresh == loaded, (
            f"instance {position}: store-loaded solve drifted from the "
            f"parse-and-pack solve"
        )
    lanes = {result.lane for result in store_results}

    speedup = parse_s / store_s

    table = render_table(
        ["path", "seconds", "inst/s", "vs parse"],
        [
            [
                "arena store (mmap)",
                f"{store_s:.3f}",
                f"{INSTANCES / store_s:.1f}",
                f"{speedup:.2f}x",
            ],
            [
                "parse-and-pack",
                f"{parse_s:.3f}",
                f"{INSTANCES / parse_s:.1f}",
                "1.00x",
            ],
        ],
        title=(
            f"E16 — cold-start solve of {INSTANCES} instances "
            f"(n={N}, m={M}, f={RANK}, {segments} segments, "
            f"{store_bytes / 2**20:.1f} MiB store vs "
            f"{text_bytes / 2**20:.1f} MiB text; lanes={sorted(lanes)})"
        ),
    )
    publish("store_cold_start", table)
    publish_json(
        "store_cold_start",
        {
            "gate": "store_cold_start_vs_parse_and_pack",
            "instances": INSTANCES,
            "n": N,
            "m": M,
            "rank": RANK,
            "segments": segments,
            "segment_instances": SEGMENT_INSTANCES,
            "store_bytes": store_bytes,
            "text_bytes": text_bytes,
            "parse_seconds": round(parse_s, 6),
            "store_seconds": round(store_s, 6),
            "speedup": round(speedup, 3),
            "lanes": sorted(lanes),
            "floor": STORE_FLOOR,
            "gated": True,
            "bit_identical": True,
        },
    )
    assert speedup >= STORE_FLOOR, (
        f"cold-start store solve managed only {speedup:.2f}x the "
        f"parse-and-pack path (floor {STORE_FLOOR}x)"
    )
