"""E14 — warm incremental re-solve vs from-scratch on point updates.

PR 8's dynamic-hypergraph layer promises that a small edit to a large
instance costs roughly one *component* re-solve, not one *instance*
re-solve.  This experiment is its acceptance gate:

* **exactness** — after every update the chained
  :func:`repro.core.incremental.resolve_incremental` result must be
  bit-identical to a from-scratch ``run_fastpath`` of the mutated
  snapshot (cover, weight, duals, iterations, rounds, levels, stats);
* **warmth** — every update in the trace must actually take the warm
  path (``warm=True``); a single ambient or threshold fallback voids
  the measurement, so the assertion keeps the gate honest;
* **throughput** — replaying the 64-update trace through
  ``resolve_incremental`` must be at least 3x faster than re-solving
  each mutated snapshot from scratch.

The profile is a union of 48 disjoint rank-3 components of n=20 each
(~960 vertices, ~1000 edges) plus one **anchor** component that is
never mutated and holds the strict global maximum degree.  Each seeded
update removes one edge and adds one rank-3 edge inside a single
non-anchor component, so the edge count is constant and the ambient
``(rank, Delta)`` pair — pinned by the anchor — never moves: the trace
stays on the warm path by construction, and the incremental side only
ever re-solves ~1/48th of the instance.  Like E11/E12 the floor is
enforced only on multi-core machines; the measurement always runs and
feeds the trend series.
"""

from __future__ import annotations

import os
import random
import time
from fractions import Fraction

from conftest import publish, publish_json

from repro.analysis.tables import render_table
from repro.core.fastpath import run_fastpath
from repro.core.incremental import resolve_incremental, solve_state
from repro.core.params import AlgorithmConfig
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.mutable import MutableHypergraph

COMPONENTS = 48
COMPONENT_N = 20
COMPONENT_EDGES = 20
ANCHOR_DEGREE = 24
#: Weight spread of the *anchor* component only.  The mutable
#: components carry uniform weight 1 (the E12 "normal" profile: tight
#: after ~2 iterations), so a dirty fragment re-solves in a handful of
#: sweeps, while the anchor's random weights drive the deep iteration
#: count the monolithic from-scratch solve re-pays on every update —
#: precisely the asymmetry warm restarts exist to exploit.
MAX_WEIGHT = 10_000
EPSILON = Fraction(1, 5000)
UPDATES = 64
TRACE_SEED = 1419
INCREMENTAL_FLOOR = 3.0

OBSERVABLES = (
    "cover",
    "weight",
    "iterations",
    "rounds",
    "dual",
    "dual_total",
    "levels",
    "stats",
)


def build_instance():
    """48 mutable weight-1 components plus one anchor component.

    The anchor is a rank-3 star: its hub participates in
    ``ANCHOR_DEGREE`` edges, far above any degree a mutable component
    can reach over the 64-update trace (base degree <= ~6, at most a
    couple of added edges per component), so the global ``Delta`` is
    pinned for the whole replay.  It alone carries random weights up to
    ``MAX_WEIGHT``: the mutable components are uniform weight 1.
    """
    rng = random.Random(TRACE_SEED)
    edges = []
    n = 0
    blocks = []
    for _ in range(COMPONENTS):
        base = n
        for _ in range(COMPONENT_EDGES):
            members = rng.sample(range(base, base + COMPONENT_N), 3)
            edges.append(tuple(members))
        blocks.append(base)
        n += COMPONENT_N
    weights = [1] * n
    # Anchor: hub n, leaves n+1 .. n+2*ANCHOR_DEGREE.
    hub = n
    for spoke in range(ANCHOR_DEGREE):
        edges.append(
            (hub, hub + 1 + 2 * spoke, hub + 2 + 2 * spoke)
        )
    anchor_n = 1 + 2 * ANCHOR_DEGREE
    weights += [rng.randint(1, MAX_WEIGHT) for _ in range(anchor_n)]
    n += anchor_n
    return Hypergraph(n, edges, weights=weights), blocks, rng


def build_trace(edges, blocks, rng):
    """64 (remove, add) point updates, round-robin over the mutable
    components, phrased against live edge positions.

    The trace is materialized as closures over a python mirror of the
    live edge list so each step can pick a removal position that
    belongs to its component at the time it runs.
    """
    live = list(edges)

    def step(component):
        base = blocks[component]
        block = range(base, base + COMPONENT_N)
        in_block = [
            position
            for position, members in enumerate(live)
            if members and min(members) >= base
            and max(members) < base + COMPONENT_N
        ]
        position = rng.choice(in_block)
        live.pop(position)
        added = tuple(rng.sample(block, 3))
        live.append(added)
        return position, added

    return [
        step(update % COMPONENTS)
        for update in range(UPDATES)
    ]


def replay(instance, trace, config):
    """One timed pass: chained warm re-solves vs from-scratch solves.

    Both sides run ``verify=False`` (like every throughput gate) and
    both sides are timed per update so the totals exclude the shared
    mutation bookkeeping.
    """
    store = MutableHypergraph(instance)
    state = solve_state(instance, config, verify=False, version=0)
    incremental_s = 0.0
    scratch_s = 0.0
    warm = 0
    results = []
    for position, added in trace:
        store.remove_edge(position)
        store.add_edge(added)
        t0 = time.perf_counter()
        state = resolve_incremental(state, store, verify=False)
        t1 = time.perf_counter()
        snapshot = store.snapshot()
        t2 = time.perf_counter()
        scratch = run_fastpath(snapshot, config, verify=False)
        t3 = time.perf_counter()
        incremental_s += t1 - t0
        scratch_s += t3 - t2
        warm += 1 if state.result.warm else 0
        results.append((state.result, scratch))
    return results, incremental_s, scratch_s, warm


def test_incremental_update_gate(benchmark):
    """Acceptance: 64 warm point updates >= 3x from-scratch re-solves,
    bit-identical at every step."""
    instance, blocks, rng = build_instance()
    trace = build_trace(instance.edges, blocks, rng)
    config = AlgorithmConfig(epsilon=EPSILON)
    cpus = os.cpu_count() or 1
    gated = cpus >= 2

    # Warm-up outside the timed region: numpy kernel setup and the
    # initial full decomposition both sides would otherwise pay once.
    replay(instance, trace[:2], config)

    def run_pair():
        # Best-of-2 totals, fresh store and state each pass.
        passes = [replay(instance, trace, config) for _ in range(2)]
        best = min(passes, key=lambda entry: entry[1])
        return (
            best[0],
            min(entry[1] for entry in passes),
            min(entry[2] for entry in passes),
            best[3],
        )

    results, incremental_s, scratch_s, warm = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )

    assert len(results) == UPDATES
    assert warm == UPDATES, (
        f"only {warm}/{UPDATES} updates ran warm — the trace leaked an "
        "ambient or threshold fallback and the measurement is void"
    )
    for update, (incremental, scratch) in enumerate(results):
        for attribute in OBSERVABLES:
            assert getattr(incremental, attribute) == getattr(
                scratch, attribute
            ), f"update {update} drifted from from-scratch: {attribute}"
        assert incremental.invalidated is not None
        assert incremental.invalidated < instance.num_edges // 8, (
            f"update {update} invalidated {incremental.invalidated} "
            "edges — point updates must stay component-local"
        )

    speedup = scratch_s / incremental_s
    per_update_ms = 1000.0 * incremental_s / UPDATES
    table = render_table(
        ["mode", "seconds (64 updates)", "throughput vs from-scratch"],
        [
            [
                "incremental re-solve",
                f"{incremental_s:.3f}",
                f"{speedup:.2f}x",
            ],
            ["from-scratch fastpath", f"{scratch_s:.3f}", "1.00x"],
        ],
        title=(
            f"E14 — {UPDATES} point updates on "
            f"{COMPONENTS}x(n={COMPONENT_N}, rank=3) + anchor "
            f"(m={instance.num_edges}, eps={EPSILON}, "
            f"{per_update_ms:.2f} ms/update, {warm}/{UPDATES} warm)"
        ),
    )
    publish("incremental_update", table)
    publish_json(
        "incremental_update",
        {
            "gate": "incremental_vs_scratch_updates",
            "components": COMPONENTS,
            "component_n": COMPONENT_N,
            "num_edges": instance.num_edges,
            "updates": UPDATES,
            "warm_updates": warm,
            "epsilon": str(EPSILON),
            "trace_seed": TRACE_SEED,
            "cpus": cpus,
            "incremental_seconds": round(incremental_s, 6),
            "scratch_seconds": round(scratch_s, 6),
            "per_update_ms": round(per_update_ms, 4),
            "speedup": round(speedup, 3),
            "floor": INCREMENTAL_FLOOR if gated else None,
            "gated": gated,
            "bit_identical": True,
        },
    )
    if gated:
        assert speedup >= INCREMENTAL_FLOOR, (
            f"incremental replay {speedup:.2f}x below the "
            f"{INCREMENTAL_FLOOR}x floor over from-scratch on {cpus} cpus"
        )
