"""E2 — Table 2 reproduction: weighted Hypergraph Vertex Cover (general f).

Reruns the implementable Table 2 rows on rank-f random hypergraphs for
f in {3, 4, 5}: this work in both (f+eps) and exact-f modes, the KVY
primal-dual, and the weight-dependent dual-doubling family, with true
ratios against the LP optimum.  Non-implemented rows appear as bound
formulas.

Shape criteria asserted:
* all covers valid, all ratios within the respective guarantees;
* the guarantee degrades gracefully with f (ratio <= f + eps for every f);
* this work's measured rounds stay within a constant factor of the
  Theorem 9 bound across f.
"""

from __future__ import annotations

from fractions import Fraction

from conftest import publish

from repro.analysis.bounds import TABLE2_BOUNDS, theorem9_round_bound
from repro.analysis.tables import render_table
from repro.baselines.dual_doubling import dual_doubling_cover
from repro.baselines.kvy import kvy_cover
from repro.baselines.local_ratio_distributed import (
    distributed_local_ratio_cover,
)
from repro.baselines.registry import this_work, this_work_f_approx
from repro.hypergraph.generators import uniform_hypergraph, uniform_weights
from repro.lp.reference import fractional_optimum

N = 300
M = 900
MAX_WEIGHT = 50
EPSILON = Fraction(1, 4)
RANKS = (3, 4, 5)


def run_experiment() -> dict:
    rows = []
    checks = []
    for rank in RANKS:
        weights = uniform_weights(N, MAX_WEIGHT, seed=rank)
        hypergraph = uniform_hypergraph(
            N, M, rank, seed=rank * 7, weights=weights
        )
        lp_opt = fractional_optimum(hypergraph)
        runs = {
            "this work (f+eps)": this_work(hypergraph, EPSILON),
            "this work (f-approx)": this_work_f_approx(hypergraph),
            "khuller-vishkin-young [15] (f+eps)": kvy_cover(
                hypergraph, EPSILON
            ),
            "kmw [18]-style dual doubling (2f)": dual_doubling_cover(
                hypergraph
            ),
            "distributed local-ratio (f, randomized)": (
                distributed_local_ratio_cover(hypergraph, seed=rank)
            ),
        }
        for name, run in runs.items():
            ratio = run.weight / lp_opt
            rows.append([f"f={rank}", name, "measured", run.rounds, ratio])
            checks.append(
                (rank, name, ratio, run.rounds, hypergraph.max_degree)
            )
        for name, bound in TABLE2_BOUNDS.items():
            if "this work" in name:
                continue
            rows.append(
                [
                    f"f={rank}",
                    name + " — bound",
                    "formula",
                    round(
                        bound(
                            N,
                            hypergraph.max_degree,
                            MAX_WEIGHT,
                            rank,
                            float(EPSILON),
                        ),
                        1,
                    ),
                    "",
                ]
            )
    return {"rows": rows, "checks": checks}


def test_table2(benchmark):
    from repro.analysis.paper_tables import TABLE2_ROWS, rows_as_table

    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = render_table(
        ["rank", "algorithm (Table 2 row)", "kind", "rounds", "ratio vs LP"],
        data["rows"],
        title=(
            f"Table 2 reproduction — MWHVC on rank-f hypergraphs "
            f"(n={N}, m={M}, W={MAX_WEIGHT}, eps={EPSILON})"
        ),
    )
    alignment = (
        "\n\npaper rows and their reproduction coverage:\n"
        + rows_as_table(TABLE2_ROWS)
    )
    publish("table2_hypergraph_cover", table + alignment)

    for rank, name, ratio, rounds, max_degree in data["checks"]:
        if name == "this work (f+eps)":
            assert ratio <= rank + float(EPSILON) + 1e-9
            # gamma=1 removes the 1/gamma constant from the expression,
            # leaving the bound's shape for a constant-factor band.
            bound = theorem9_round_bound(
                max_degree, rank, EPSILON, gamma=1.0
            )
            assert rounds <= 10 * bound
        elif name == "this work (f-approx)":
            assert ratio <= rank + 1e-9
        elif "khuller" in name:
            assert ratio <= rank + float(EPSILON) + 1e-9
        elif "doubling" in name:
            assert ratio <= 2 * rank + 1e-9
        elif "local-ratio" in name:
            assert ratio <= rank + 1e-9


def test_benchmark_single_solve_f4(benchmark):
    """Timing anchor: one (f+eps) solve at f = 4."""
    weights = uniform_weights(N, MAX_WEIGHT, seed=4)
    hypergraph = uniform_hypergraph(N, M, 4, seed=28, weights=weights)
    benchmark(lambda: this_work(hypergraph, EPSILON))
