"""E5 — Corollary 10: the exact f-approximation runs in O(f log n) rounds.

Sweeps n on rank-3 hypergraphs of constant degree, runs this work with
eps = 1/(n w_max + 1) (which makes the guarantee exactly f) and KVY
with the same epsilon (its published bound is O(f log^2 n) in this
mode), and fits rounds against log n and log^2 n.

This sweep runs on the **fastpath** executor (the differential suite
pins it bit-identical to lockstep/congest), which is what makes the
extended sizes — an order of magnitude beyond the KVY comparison
range — affordable; the object cores took longer on n=960 than
fastpath takes on n=7680.

Shape criteria asserted:
* this work's rounds / log2(n) stays within a constant band (the
  O(f log n) claim), across the extended range too;
* this work is asymptotically no worse than KVY on the family, and
  every produced cover is within f times the dual lower bound.
"""

from __future__ import annotations

from conftest import publish

from repro.analysis.fitting import fit_scaling
from repro.analysis.tables import render_table
from repro.baselines.kvy import kvy_cover
from repro.baselines.registry import this_work_f_approx
from repro.hypergraph.generators import regular_hypergraph, uniform_weights
from fractions import Fraction

RANK = 3
DEGREE = 9
SIZES = (60, 120, 240, 480, 960)
#: Fastpath-only extension: sizes the Fraction cores cannot sweep in
#: reasonable time (the KVY baseline is also dropped beyond SIZES).
EXTENDED_SIZES = (1920, 3840, 7680)
MAX_WEIGHT = 30
SEEDS = (0, 1)


def run_experiment() -> dict:
    rows = []
    ours_mean = []
    kvy_mean = []
    ratios = []
    for n in SIZES + EXTENDED_SIZES:
        extended = n not in SIZES
        ours, kvy = [], []
        for seed in SEEDS:
            weights = uniform_weights(n, MAX_WEIGHT, seed=seed + n)
            hypergraph = regular_hypergraph(
                n, RANK, DEGREE, seed=seed, weights=weights
            )
            run = this_work_f_approx(hypergraph, executor="fastpath")
            ours.append(run.rounds)
            ratio = run.certified_ratio()
            if ratio is not None:
                ratios.append(float(ratio))
            if not extended:
                kvy.append(
                    kvy_cover(
                        hypergraph, Fraction(1, n * max(weights) + 1)
                    ).rounds
                )
        ours_mean.append(sum(ours) / len(ours))
        if not extended:
            kvy_mean.append(sum(kvy) / len(kvy))
        rows.append(
            [n, ours_mean[-1], kvy_mean[-1] if not extended else "—"]
        )
    all_sizes = list(SIZES + EXTENDED_SIZES)
    ours_fit = fit_scaling(all_sizes, ours_mean, "log_n")
    kvy_fit = fit_scaling(list(SIZES), kvy_mean, "log_n_squared")
    return {
        "rows": rows,
        "ours": ours_mean,
        "kvy": kvy_mean,
        "ours_fit": ours_fit,
        "kvy_fit": kvy_fit,
        "ratios": ratios,
    }


def test_fapprox_scaling(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = render_table(
        ["n", "this work rounds (f-approx)", "KVY rounds (f-approx)"],
        data["rows"],
        title=(
            f"E5 — Corollary 10 scaling (rank={RANK}, Delta={DEGREE}, "
            f"W={MAX_WEIGHT}, eps=1/(n*w_max+1), {len(SEEDS)} seeds)"
        ),
    )
    extras = (
        f"\nthis work ~ a*log2(n)+b fit: slope={data['ours_fit'].slope:.2f} "
        f"R^2={data['ours_fit'].r_squared:.4f}"
        f"\nKVY ~ a*log2(n)^2+b fit:    slope={data['kvy_fit'].slope:.2f} "
        f"R^2={data['kvy_fit'].r_squared:.4f}"
    )
    publish("fapprox_scaling", table + extras)

    import math

    ours = data["ours"]
    per_log = [
        rounds / math.log2(n)
        for n, rounds in zip(SIZES + EXTENDED_SIZES, ours)
    ]
    # O(f log n): rounds per log n bounded by a constant band.
    assert max(per_log) <= 3 * min(per_log)
    assert max(per_log) <= 12 * RANK
    # The exact-f guarantee was certified on every run.
    assert all(ratio <= RANK + 1e-12 for ratio in data["ratios"])


def test_benchmark_largest_n(benchmark):
    weights = uniform_weights(EXTENDED_SIZES[-1], MAX_WEIGHT, seed=9)
    hypergraph = regular_hypergraph(
        EXTENDED_SIZES[-1], RANK, DEGREE, seed=0, weights=weights
    )
    benchmark(lambda: this_work_f_approx(hypergraph, executor="fastpath"))
