"""E9 — executor and instrumentation overheads (methodology check).

Times the same solve four ways:

* fastpath executor (scaled-integer arrays — the sweep workhorse);
* lockstep executor (Fraction object cores);
* lockstep with invariant checking (Claims 1-2 verified every
  iteration — the cost of running in self-verifying mode);
* the full CONGEST message-passing engine.

All four produce bit-identical results (asserted); the timing ratios
justify using fastpath for the scaling experiments.  Also reports the
engine's message statistics for one run, substantiating the CONGEST
message-width claim on a mid-size instance.

Three hard gates ride along:

* ``test_fastpath_smoke_equality_gate`` — a fast fastpath-vs-lockstep
  differential check sized for CI;
* ``test_fastpath_speedup_trend_profile`` — the CI ``bench-trend``
  profile: on the seeded smoke instance, fastpath must match lockstep
  bit-for-bit *and* beat it by the 5x floor; emits the JSON consumed
  by ``benchmarks/trend.py``;
* ``test_fastpath_speedup_large_instance`` — the PR 1 acceptance
  criterion at ``n = 10^4, m = 5*10^4``, same floor;
* ``test_lane_speedup_gate`` — the PR 3 acceptance criterion: on a
  seeded lane-eligible instance the machine-width kernel lane (the
  default ``lane="auto"`` fastpath loop) must be bit-identical to and
  >= 2x faster than the pre-PR big-int loop (``lane="bigint"``);
* ``test_fused_sweep_speedup_gate`` — on the same lane profile, the
  fused sweep/setup passes (``FUSED_SWEEPS = True``, the default) must
  be bit-identical to and >= 1.3x faster than the pre-fusion engine
  (``FUSED_SWEEPS = False``);
* ``test_three_limb_speedup_gate`` — on a seeded huge-``beta_den``
  instance that disqualifies both narrower machine lanes, the
  three-limb lane must complete the whole run (no spill to big-int)
  bit-identically and >= 2x faster than the forced big-int loop.

The speedup gates persist machine-readable JSON (via ``publish_json``)
next to their text tables so the benchmark-trend pipeline can track
the ratios across commits.
"""

from __future__ import annotations

import time
from fractions import Fraction

from conftest import publish, publish_json

from repro.analysis.tables import render_table
from repro.core.params import AlgorithmConfig
from repro.core.solver import solve_mwhvc
from repro.hypergraph.generators import uniform_hypergraph, uniform_weights

N = 220
M = 650
RANK = 3
EPSILON = Fraction(1, 3)

LARGE_N = 10_000
LARGE_M = 50_000
LARGE_SEED = 7
SPEEDUP_FLOOR = 5.0

SMOKE_N = 2_000
SMOKE_M = 10_000


def build_instance(n=N, m=M, *, seed=4, weight_seed=5, max_weight=40):
    weights = uniform_weights(n, max_weight, seed=weight_seed)
    return uniform_hypergraph(n, m, RANK, seed=seed, weights=weights)


def assert_bit_identical(reference, other, *, what):
    assert other.cover == reference.cover, what
    assert other.weight == reference.weight, what
    assert other.iterations == reference.iterations, what
    assert other.rounds == reference.rounds, what
    assert other.dual == reference.dual, what
    assert other.levels == reference.levels, what
    assert other.stats == reference.stats, what


def test_equivalence_and_message_stats(benchmark):
    hypergraph = build_instance()
    config = AlgorithmConfig(epsilon=EPSILON)

    def run_all():
        lock = solve_mwhvc(hypergraph, config=config)
        fast = solve_mwhvc(hypergraph, config=config, executor="fastpath")
        checked = solve_mwhvc(
            hypergraph,
            config=AlgorithmConfig(epsilon=EPSILON, check_invariants=True),
        )
        engine = solve_mwhvc(hypergraph, config=config, executor="congest")
        return lock, fast, checked, engine

    lock, fast, checked, engine = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    assert lock.cover == fast.cover == checked.cover == engine.cover
    assert lock.rounds == engine.rounds
    assert lock.dual == engine.dual
    assert_bit_identical(lock, fast, what="fastpath vs lockstep")

    metrics = engine.metrics
    table = render_table(
        ["quantity", "value"],
        [
            ["rounds", metrics.rounds],
            ["iterations", engine.iterations],
            ["messages", metrics.messages],
            ["total bits", metrics.total_bits],
            ["max message bits", metrics.max_message_bits],
            ["mean message bits", round(metrics.mean_message_bits, 2)],
            ["bandwidth cap (bits)", metrics.bandwidth_cap_bits],
            ["bandwidth violations", metrics.bandwidth_violations],
            ["dropped messages", metrics.dropped_messages],
        ],
        title=(
            f"E9 — CONGEST engine statistics (n={N}, m={M}, rank={RANK}, "
            f"eps={EPSILON})"
        ),
    )
    publish("executor_message_stats", table)
    assert metrics.bandwidth_violations == 0
    assert metrics.max_message_bits <= metrics.bandwidth_cap_bits


def test_benchmark_fastpath(benchmark):
    hypergraph = build_instance()
    config = AlgorithmConfig(epsilon=EPSILON)
    benchmark(
        lambda: solve_mwhvc(hypergraph, config=config, executor="fastpath")
    )


def test_benchmark_lockstep(benchmark):
    hypergraph = build_instance()
    config = AlgorithmConfig(epsilon=EPSILON)
    benchmark(lambda: solve_mwhvc(hypergraph, config=config))


def test_benchmark_lockstep_checked(benchmark):
    hypergraph = build_instance()
    config = AlgorithmConfig(epsilon=EPSILON, check_invariants=True)
    benchmark(lambda: solve_mwhvc(hypergraph, config=config))


def test_benchmark_congest_engine(benchmark):
    hypergraph = build_instance()
    config = AlgorithmConfig(epsilon=EPSILON)
    benchmark(
        lambda: solve_mwhvc(hypergraph, config=config, executor="congest")
    )


def test_fastpath_smoke_equality_gate(benchmark):
    """CI gate: fastpath == lockstep on a mid-size seeded instance."""
    hypergraph = build_instance(
        SMOKE_N, SMOKE_M, seed=11, weight_seed=12
    )
    config = AlgorithmConfig(epsilon=EPSILON)

    def run_pair():
        fast = solve_mwhvc(
            hypergraph, config=config, executor="fastpath"
        )
        lock = solve_mwhvc(hypergraph, config=config)
        return fast, lock

    fast, lock = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert_bit_identical(lock, fast, what="smoke fastpath vs lockstep")


def _speedup_gate(benchmark, hypergraph, *, name, label, seed):
    """Timed fastpath-vs-lockstep pair: equality + 5x floor + reports.

    Timed with ``verify=False`` so the (identical, shared) certificate
    verification cost does not mask the executor difference; equality
    of every observable is still asserted on the returned results.
    Publishes both the human-readable table and the JSON blob the
    ``bench-trend`` CI job appends to the ``BENCH_3.json`` series.
    """
    config = AlgorithmConfig(epsilon=EPSILON)

    def run_pair():
        # Best-of-2 on both sides: a single-shot ratio on a shared CI
        # runner is too exposed to noisy neighbors for a hard gate.
        fast_times = []
        lock_times = []
        for _ in range(2):
            t0 = time.perf_counter()
            fast = solve_mwhvc(
                hypergraph, config=config, executor="fastpath",
                verify=False,
            )
            t1 = time.perf_counter()
            lock = solve_mwhvc(
                hypergraph, config=config, executor="lockstep",
                verify=False,
            )
            t2 = time.perf_counter()
            fast_times.append(t1 - t0)
            lock_times.append(t2 - t1)
        return fast, lock, min(fast_times), min(lock_times)

    fast, lock, fast_s, lock_s = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )
    assert_bit_identical(lock, fast, what=f"{label} fastpath vs lockstep")
    speedup = lock_s / fast_s
    n = hypergraph.num_vertices
    m = hypergraph.num_edges
    table = render_table(
        ["executor", "seconds", "speedup vs lockstep"],
        [
            ["fastpath", f"{fast_s:.3f}", f"{speedup:.1f}x"],
            ["lockstep", f"{lock_s:.3f}", "1.0x"],
        ],
        title=(
            f"E9 — fastpath speedup (n={n}, m={m}, rank={RANK}, "
            f"eps={EPSILON}, seed={seed}, iterations={fast.iterations})"
        ),
    )
    publish(name, table)
    publish_json(
        name,
        {
            "gate": "fastpath_vs_lockstep_speedup",
            "profile": label,
            "n": n,
            "m": m,
            "rank": RANK,
            "epsilon": str(EPSILON),
            "seed": seed,
            "iterations": fast.iterations,
            "fastpath_seconds": round(fast_s, 6),
            "lockstep_seconds": round(lock_s, 6),
            "speedup": round(speedup, 3),
            "floor": SPEEDUP_FLOOR,
            "bit_identical": True,
        },
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"fastpath speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor"
    )


def test_fastpath_speedup_trend_profile(benchmark):
    """CI bench-trend gate: the smoke-size instance must hold the 5x floor."""
    hypergraph = build_instance(
        SMOKE_N, SMOKE_M, seed=11, weight_seed=12
    )
    _speedup_gate(
        benchmark,
        hypergraph,
        name="executor_fastpath_speedup_trend",
        label="trend",
        seed=11,
    )


def test_fastpath_speedup_large_instance(benchmark):
    """Acceptance gate: bit-identical and >= 5x on n=1e4, m=5e4."""
    hypergraph = build_instance(
        LARGE_N, LARGE_M, seed=LARGE_SEED, weight_seed=8, max_weight=60
    )
    _speedup_gate(
        benchmark,
        hypergraph,
        name="executor_fastpath_speedup",
        label="large",
        seed=LARGE_SEED,
    )


# PR 3 lane gate: seeded profile chosen to be comfortably int64
# lane-eligible (regular degrees keep the lcm-of-denominators scale
# tiny) with enough iteration depth (eps = 1/200) that the vectorized
# sweep advantage over the per-vertex Python loop is structural, not
# noise.
LANE_N = 4_000
LANE_RANK = 3
LANE_DEGREE = 9
LANE_MAX_WEIGHT = 10_000
LANE_EPSILON = Fraction(1, 200)
LANE_SEED = 5
LANE_SPEEDUP_FLOOR = 2.0


def test_lane_speedup_gate(benchmark):
    """Acceptance: the machine-width fastpath loop >= 2x the big-int loop."""
    from repro.core.batch import arena_eligibility
    from repro.hypergraph.generators import regular_hypergraph

    hypergraph = regular_hypergraph(
        LANE_N,
        LANE_RANK,
        LANE_DEGREE,
        seed=LANE_SEED,
        weights=uniform_weights(LANE_N, LANE_MAX_WEIGHT, seed=LANE_SEED + 1),
    )
    config = AlgorithmConfig(epsilon=LANE_EPSILON)
    eligible, reason = arena_eligibility(hypergraph, config)
    assert eligible, f"gate profile must be int64 lane-eligible: {reason}"

    # Warm-up outside the timed region so both lanes are steady-state.
    solve_mwhvc(hypergraph, config=config, executor="fastpath", verify=False)

    def run_pair():
        machine_times = []
        bigint_times = []
        for _ in range(2):
            t0 = time.perf_counter()
            machine = solve_mwhvc(
                hypergraph, config=config, executor="fastpath",
                verify=False,
            )
            t1 = time.perf_counter()
            bigint = solve_mwhvc(
                hypergraph, config=config, executor="fastpath",
                lane="bigint", verify=False,
            )
            t2 = time.perf_counter()
            machine_times.append(t1 - t0)
            bigint_times.append(t2 - t1)
        return machine, bigint, min(machine_times), min(bigint_times)

    machine, bigint, machine_s, bigint_s = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )
    assert machine.lane == "int64", machine.lane
    assert bigint.lane == "bigint", bigint.lane
    assert_bit_identical(bigint, machine, what="machine lane vs big-int lane")
    speedup = bigint_s / machine_s
    table = render_table(
        ["lane", "seconds", "speedup vs big-int"],
        [
            ["int64 (machine)", f"{machine_s:.3f}", f"{speedup:.2f}x"],
            ["bigint (pre-PR loop)", f"{bigint_s:.3f}", "1.00x"],
        ],
        title=(
            f"E11 — single-instance kernel-lane speedup (n={LANE_N}, "
            f"{LANE_DEGREE}-regular, rank={LANE_RANK}, "
            f"W<={LANE_MAX_WEIGHT}, eps={LANE_EPSILON}, "
            f"iterations={machine.iterations})"
        ),
    )
    publish("executor_lane_speedup", table)
    publish_json(
        "executor_lane_speedup",
        {
            "gate": "fastpath_lane_vs_bigint_speedup",
            "n": LANE_N,
            "m": hypergraph.num_edges,
            "rank": LANE_RANK,
            "degree": LANE_DEGREE,
            "max_weight": LANE_MAX_WEIGHT,
            "epsilon": str(LANE_EPSILON),
            "seed": LANE_SEED,
            "iterations": machine.iterations,
            "machine_seconds": round(machine_s, 6),
            "bigint_seconds": round(bigint_s, 6),
            "speedup": round(speedup, 3),
            "floor": LANE_SPEEDUP_FLOOR,
            "bit_identical": True,
        },
    )
    assert speedup >= LANE_SPEEDUP_FLOOR, (
        f"machine-lane speedup {speedup:.2f}x below the "
        f"{LANE_SPEEDUP_FLOOR}x floor"
    )


FUSED_SPEEDUP_FLOOR = 1.3


def test_fused_sweep_speedup_gate(benchmark):
    """Acceptance: fused sweep/setup passes >= 1.3x the pre-fusion engine.

    ``FUSED_SWEEPS = False`` reproduces the pre-fusion engine — scalar
    iteration 0, scalar arena packing, per-op sweep composition with no
    view caches, per-edge Fraction finalization — so flipping the flag
    inside the timed pair measures exactly what the fusion bought.
    Both modes must stay bit-identical on every observable.
    """
    import repro.core.kernels as kernels_module
    from repro.hypergraph.generators import regular_hypergraph

    hypergraph = regular_hypergraph(
        LANE_N,
        LANE_RANK,
        LANE_DEGREE,
        seed=LANE_SEED,
        weights=uniform_weights(LANE_N, LANE_MAX_WEIGHT, seed=LANE_SEED + 1),
    )
    config = AlgorithmConfig(epsilon=LANE_EPSILON)
    solve_mwhvc(hypergraph, config=config, executor="fastpath", verify=False)

    def run_pair():
        fused_times = []
        unfused_times = []
        try:
            for _ in range(2):
                kernels_module.FUSED_SWEEPS = True
                t0 = time.perf_counter()
                fused = solve_mwhvc(
                    hypergraph, config=config, executor="fastpath",
                    verify=False,
                )
                t1 = time.perf_counter()
                kernels_module.FUSED_SWEEPS = False
                unfused = solve_mwhvc(
                    hypergraph, config=config, executor="fastpath",
                    verify=False,
                )
                t2 = time.perf_counter()
                fused_times.append(t1 - t0)
                unfused_times.append(t2 - t1)
        finally:
            kernels_module.FUSED_SWEEPS = True
        return fused, unfused, min(fused_times), min(unfused_times)

    fused, unfused, fused_s, unfused_s = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )
    assert fused.lane == unfused.lane == "int64"
    assert_bit_identical(unfused, fused, what="fused vs pre-fusion sweeps")
    speedup = unfused_s / fused_s
    table = render_table(
        ["engine", "seconds", "speedup vs pre-fusion"],
        [
            ["fused sweeps", f"{fused_s:.3f}", f"{speedup:.2f}x"],
            ["pre-fusion", f"{unfused_s:.3f}", "1.00x"],
        ],
        title=(
            f"E11 — fused sweep-pass speedup (n={LANE_N}, "
            f"{LANE_DEGREE}-regular, rank={LANE_RANK}, "
            f"W<={LANE_MAX_WEIGHT}, eps={LANE_EPSILON}, "
            f"iterations={fused.iterations})"
        ),
    )
    publish("executor_fused_sweeps", table)
    publish_json(
        "executor_fused_sweeps",
        {
            "gate": "fastpath_fused_sweep_speedup",
            "n": LANE_N,
            "m": hypergraph.num_edges,
            "rank": LANE_RANK,
            "degree": LANE_DEGREE,
            "max_weight": LANE_MAX_WEIGHT,
            "epsilon": str(LANE_EPSILON),
            "seed": LANE_SEED,
            "iterations": fused.iterations,
            "fused_seconds": round(fused_s, 6),
            "unfused_seconds": round(unfused_s, 6),
            "speedup": round(speedup, 3),
            "floor": FUSED_SPEEDUP_FLOOR,
            "bit_identical": True,
        },
    )
    assert speedup >= FUSED_SPEEDUP_FLOOR, (
        f"fused-sweep speedup {speedup:.2f}x below the "
        f"{FUSED_SPEEDUP_FLOOR}x floor"
    )


# PR 6 three-limb gate: ``eps = (2^31 + 1) / 2^43`` has moderate
# magnitude (~2^-12, so z stays at 14 and the run converges) but a
# 43-bit power-of-two denominator, making ``beta_den ~ f * 2^43`` —
# a headroom factor past both the int64 bound and the two-limb 31-bit
# multiplier budget, yet comfortably inside the three-limb 62-bit one.
THREE_LIMB_N = 8_000
THREE_LIMB_SEED = 11
THREE_LIMB_EPSILON = Fraction((1 << 31) + 1, 1 << 43)
THREE_LIMB_SPEEDUP_FLOOR = 2.0


def test_three_limb_speedup_gate(benchmark):
    """Acceptance: the three-limb lane >= 2x big-int where two-limb can't go."""
    import repro.core.kernels as kernels_module
    from repro.core.fastpath import prepare_scaled_state
    from repro.hypergraph.generators import regular_hypergraph

    hypergraph = regular_hypergraph(
        THREE_LIMB_N,
        LANE_RANK,
        LANE_DEGREE,
        seed=THREE_LIMB_SEED,
        weights=uniform_weights(
            THREE_LIMB_N, LANE_MAX_WEIGHT, seed=THREE_LIMB_SEED + 1
        ),
    )
    config = AlgorithmConfig(epsilon=THREE_LIMB_EPSILON)
    state = prepare_scaled_state(hypergraph, config)
    for lane in ("int64", "two-limb"):
        eligible, reason = kernels_module.lane_eligibility(
            hypergraph, config, state, lane=lane
        )
        assert not eligible, f"{lane} must be ineligible on this profile"
    eligible, reason = kernels_module.lane_eligibility(
        hypergraph, config, state, lane="three-limb"
    )
    assert eligible, f"three-limb must admit this profile: {reason}"

    solve_mwhvc(hypergraph, config=config, executor="fastpath", verify=False)

    def run_pair():
        three_times = []
        bigint_times = []
        for _ in range(2):
            t0 = time.perf_counter()
            three = solve_mwhvc(
                hypergraph, config=config, executor="fastpath",
                verify=False,
            )
            t1 = time.perf_counter()
            bigint = solve_mwhvc(
                hypergraph, config=config, executor="fastpath",
                lane="bigint", verify=False,
            )
            t2 = time.perf_counter()
            three_times.append(t1 - t0)
            bigint_times.append(t2 - t1)
        return three, bigint, min(three_times), min(bigint_times)

    three, bigint, three_s, bigint_s = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )
    # The whole run must have stayed on the three-limb lane — a
    # mid-run spill to big-int would report the final (big-int) lane.
    assert three.lane == "three-limb", three.lane
    assert bigint.lane == "bigint", bigint.lane
    assert_bit_identical(bigint, three, what="three-limb vs big-int lane")
    speedup = bigint_s / three_s
    table = render_table(
        ["lane", "seconds", "speedup vs big-int"],
        [
            ["three-limb", f"{three_s:.3f}", f"{speedup:.2f}x"],
            ["bigint", f"{bigint_s:.3f}", "1.00x"],
        ],
        title=(
            f"E11 — three-limb lane speedup (n={THREE_LIMB_N}, "
            f"{LANE_DEGREE}-regular, rank={LANE_RANK}, "
            f"W<={LANE_MAX_WEIGHT}, eps=(2^31+1)/2^43, "
            f"iterations={three.iterations})"
        ),
    )
    publish("executor_three_limb_speedup", table)
    publish_json(
        "executor_three_limb_speedup",
        {
            "gate": "fastpath_three_limb_vs_bigint_speedup",
            "n": THREE_LIMB_N,
            "m": hypergraph.num_edges,
            "rank": LANE_RANK,
            "degree": LANE_DEGREE,
            "max_weight": LANE_MAX_WEIGHT,
            "epsilon": "(2**31+1)/2**43",
            "seed": THREE_LIMB_SEED,
            "iterations": three.iterations,
            "three_limb_seconds": round(three_s, 6),
            "bigint_seconds": round(bigint_s, 6),
            "speedup": round(speedup, 3),
            "floor": THREE_LIMB_SPEEDUP_FLOOR,
            "bit_identical": True,
        },
    )
    assert speedup >= THREE_LIMB_SPEEDUP_FLOOR, (
        f"three-limb speedup {speedup:.2f}x below the "
        f"{THREE_LIMB_SPEEDUP_FLOOR}x floor"
    )
