"""E9 — executor and instrumentation overheads (methodology check).

Times the same solve three ways:

* lockstep executor (the sweep workhorse);
* lockstep with invariant checking (Claims 1-2 verified every
  iteration — the cost of running in self-verifying mode);
* the full CONGEST message-passing engine.

All three produce bit-identical results (asserted); the timing ratios
justify using lockstep for the scaling experiments.  Also reports the
engine's message statistics for one run, substantiating the CONGEST
message-width claim on a mid-size instance.
"""

from __future__ import annotations

from fractions import Fraction

from conftest import publish

from repro.analysis.tables import render_table
from repro.core.params import AlgorithmConfig
from repro.core.solver import solve_mwhvc
from repro.hypergraph.generators import uniform_hypergraph, uniform_weights

N = 220
M = 650
RANK = 3
EPSILON = Fraction(1, 3)


def build_instance():
    weights = uniform_weights(N, 40, seed=5)
    return uniform_hypergraph(N, M, RANK, seed=4, weights=weights)


def test_equivalence_and_message_stats(benchmark):
    hypergraph = build_instance()
    config = AlgorithmConfig(epsilon=EPSILON)

    def run_all():
        lock = solve_mwhvc(hypergraph, config=config)
        checked = solve_mwhvc(
            hypergraph,
            config=AlgorithmConfig(epsilon=EPSILON, check_invariants=True),
        )
        engine = solve_mwhvc(hypergraph, config=config, executor="congest")
        return lock, checked, engine

    lock, checked, engine = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    assert lock.cover == checked.cover == engine.cover
    assert lock.rounds == engine.rounds
    assert lock.dual == engine.dual

    metrics = engine.metrics
    table = render_table(
        ["quantity", "value"],
        [
            ["rounds", metrics.rounds],
            ["iterations", engine.iterations],
            ["messages", metrics.messages],
            ["total bits", metrics.total_bits],
            ["max message bits", metrics.max_message_bits],
            ["mean message bits", round(metrics.mean_message_bits, 2)],
            ["bandwidth cap (bits)", metrics.bandwidth_cap_bits],
            ["bandwidth violations", metrics.bandwidth_violations],
            ["dropped messages", metrics.dropped_messages],
        ],
        title=(
            f"E9 — CONGEST engine statistics (n={N}, m={M}, rank={RANK}, "
            f"eps={EPSILON})"
        ),
    )
    publish("executor_message_stats", table)
    assert metrics.bandwidth_violations == 0
    assert metrics.max_message_bits <= metrics.bandwidth_cap_bits


def test_benchmark_lockstep(benchmark):
    hypergraph = build_instance()
    config = AlgorithmConfig(epsilon=EPSILON)
    benchmark(lambda: solve_mwhvc(hypergraph, config=config))


def test_benchmark_lockstep_checked(benchmark):
    hypergraph = build_instance()
    config = AlgorithmConfig(epsilon=EPSILON, check_invariants=True)
    benchmark(lambda: solve_mwhvc(hypergraph, config=config))


def test_benchmark_congest_engine(benchmark):
    hypergraph = build_instance()
    config = AlgorithmConfig(epsilon=EPSILON)
    benchmark(
        lambda: solve_mwhvc(hypergraph, config=config, executor="congest")
    )
