"""Shared helpers for the benchmark/experiment suite.

Every experiment module runs its measurement inside a pytest-benchmark
``pedantic`` call (one timed execution), prints its reproduction table,
persists it under ``benchmarks/results/`` for EXPERIMENTS.md, and
asserts the experiment's shape criteria.

Gate experiments additionally persist a machine-readable JSON blob via
:func:`publish_json`; ``benchmarks/trend.py`` folds those blobs into
the committed repo-root ``BENCH_3.json`` cross-commit series consumed
by the ``bench-trend`` CI job.
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def publish(name: str, text: str) -> None:
    """Print a report table and persist it under benchmarks/results/."""
    banner = f"\n{'=' * 78}\n{name}\n{'=' * 78}"
    print(banner)
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def publish_json(name: str, payload: dict) -> None:
    """Persist a machine-readable result under benchmarks/results/.

    ``payload`` must be JSON-serializable; it is stored as
    ``results/<name>.json`` alongside the human-readable table of the
    same name and later folded into the ``BENCH_3.json`` series by
    ``benchmarks/trend.py``.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
