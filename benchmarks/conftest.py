"""Shared helpers for the benchmark/experiment suite.

Every experiment module runs its measurement inside a pytest-benchmark
``pedantic`` call (one timed execution), prints its reproduction table,
persists it under ``benchmarks/results/`` for EXPERIMENTS.md, and
asserts the experiment's shape criteria.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def publish(name: str, text: str) -> None:
    """Print a report table and persist it under benchmarks/results/."""
    banner = f"\n{'=' * 78}\n{name}\n{'=' * 78}"
    print(banner)
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
