"""E6 — Corollary 3 / Claim 20: the (f+eps) guarantee, measured.

Sweeps eps on fixed instance families and reports three quantities per
point:

* the *certified* ratio ``w(C) / sum(delta)`` (exact, internal —
  provably an upper bound on the true ratio by weak duality);
* the *true* ratio against the LP optimum;
* the guarantee ``f + eps``.

Also compares against greedy and the sequential local-ratio
f-approximation on the same instances.

Shape criteria asserted:
* certified ratio <= f + eps on every run (the theorem, exactly);
* true ratio <= certified ratio <= f + eps (the certificate chain);
* the rounds grow as eps shrinks no faster than ~log(1/eps)
  (Theorem 9's additive log(1/eps) term).
"""

from __future__ import annotations

from fractions import Fraction

from conftest import publish

from repro.analysis.tables import render_table
from repro.baselines.greedy import greedy_set_cover
from repro.baselines.registry import this_work
from repro.baselines.sequential import local_ratio_cover
from repro.hypergraph.generators import uniform_hypergraph, uniform_weights
from repro.lp.reference import fractional_optimum

N = 200
M = 520
RANK = 3
MAX_WEIGHT = 60
EPSILONS = (
    Fraction(1),
    Fraction(1, 2),
    Fraction(1, 4),
    Fraction(1, 8),
    Fraction(1, 16),
    Fraction(1, 32),
    Fraction(1, 64),
)
SEEDS = (0, 1, 2)


def run_experiment() -> dict:
    instances = []
    for seed in SEEDS:
        weights = uniform_weights(N, MAX_WEIGHT, seed=seed + 7)
        hypergraph = uniform_hypergraph(
            N, M, RANK, seed=seed, weights=weights
        )
        instances.append((hypergraph, fractional_optimum(hypergraph)))

    rows = []
    checks = []
    for epsilon in EPSILONS:
        certified, true_ratio, rounds = [], [], []
        for hypergraph, lp_opt in instances:
            run = this_work(hypergraph, epsilon)
            certified.append(float(run.certified_ratio()))
            true_ratio.append(run.weight / lp_opt)
            rounds.append(run.rounds)
        guarantee = RANK + float(epsilon)
        rows.append(
            [
                str(epsilon),
                guarantee,
                max(certified),
                max(true_ratio),
                sum(rounds) / len(rounds),
            ]
        )
        checks.append(
            (float(epsilon), guarantee, max(certified), max(true_ratio),
             sum(rounds) / len(rounds))
        )

    reference_rows = []
    for hypergraph, lp_opt in instances:
        greedy = greedy_set_cover(hypergraph)
        local = local_ratio_cover(hypergraph)
        reference_rows.append(
            [greedy.weight / lp_opt, local.weight / lp_opt]
        )
    return {"rows": rows, "checks": checks, "references": reference_rows}


def test_approx_ratio(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = render_table(
        [
            "eps",
            "guarantee f+eps",
            "certified ratio (max)",
            "true ratio vs LP (max)",
            "rounds (mean)",
        ],
        data["rows"],
        title=(
            f"E6 — approximation ratio vs eps (rank={RANK}, n={N}, m={M}, "
            f"W={MAX_WEIGHT}, {len(SEEDS)} seeds)"
        ),
    )
    refs = data["references"]
    extras = "\nsequential references (ratio vs LP per seed): " + ", ".join(
        f"greedy={g:.3f}/local-ratio={l:.3f}" for g, l in refs
    )
    publish("approx_ratio", table + extras)

    for epsilon, guarantee, certified, true_ratio, _ in data["checks"]:
        assert certified <= guarantee + 1e-9
        assert true_ratio <= certified + 1e-9
    # Rounds grow mildly (additive log(1/eps) term), not explosively.
    first_rounds = data["checks"][0][4]
    last_rounds = data["checks"][-1][4]
    assert last_rounds <= first_rounds + 20 * 6  # log2(64) = 6 levels


def test_benchmark_tight_epsilon(benchmark):
    weights = uniform_weights(N, MAX_WEIGHT, seed=7)
    hypergraph = uniform_hypergraph(N, M, RANK, seed=0, weights=weights)
    benchmark(lambda: this_work(hypergraph, Fraction(1, 64)))
