"""E7 — Theorem 19 / Claims 15+18: covering ILPs end to end.

Random covering ILPs are solved through the full pipeline (binary
expansion -> monotone-CNF hyperedges -> Algorithm MWHVC in Appendix C
mode), in both execution methods:

* ``direct``  — MWHVC on the reduced hypergraph (rounds = T(f', Δ', eps)
  on the covering network);
* ``distributed`` — the genuine N(ILP) bipartite simulation with
  fragmented mask broadcasts (rounds include the (1 + f/log n)
  simulation factor of Claim 15).

A second sweep grows the box bound M to expose the reduction blowup
(f' <= f(A) ceil(log M + 1), Lemma 14's 2^f' edge count) and its round
cost.

Shape criteria asserted:
* both methods return the identical assignment on every instance;
* every assignment is feasible and within the certified factor of the
  exact optimum;
* the reduction respects Claim 18's rank bound and Lemma 14's degree
  bound;
* distributed rounds >= direct rounds (the simulation overhead is real).
"""

from __future__ import annotations

import math
import random
from fractions import Fraction

from conftest import publish

from repro.analysis.tables import render_table
from repro.ilp.program import CoveringILP, exact_ilp_optimum
from repro.ilp.solver import solve_covering_ilp

EPSILON = Fraction(1, 2)


def random_ilp(seed: int, variables: int, rows: int, max_bound: int) -> CoveringILP:
    rng = random.Random(seed)
    matrix = []
    bounds = []
    for _ in range(rows):
        row = [0] * variables
        for variable in rng.sample(range(variables), rng.randint(1, 2)):
            row[variable] = rng.randint(1, 3)
        if not any(row):
            row[rng.randrange(variables)] = 1
        matrix.append(row)
        bounds.append(rng.randint(1, max_bound))
    weights = [rng.randint(1, 8) for _ in range(variables)]
    return CoveringILP.from_dense(matrix, bounds, weights)


def run_experiment() -> dict:
    rows = []
    checks = []
    for seed in range(6):
        ilp = random_ilp(seed, variables=4, rows=4, max_bound=7)
        direct = solve_covering_ilp(ilp, EPSILON, method="direct")
        distributed = solve_covering_ilp(ilp, EPSILON, method="distributed")
        optimum, _ = exact_ilp_optimum(ilp)
        hg = direct.reduction.hypergraph
        expansion = direct.expansion
        rank_bound = ilp.row_rank * math.ceil(
            math.log2(float(ilp.box_bound)) + 1
        )
        degree_bound = (2**expansion.program.row_rank) * ilp.column_degree
        rows.append(
            [
                seed,
                f"{ilp.num_variables}x{ilp.num_constraints}",
                str(ilp.box_bound),
                f"{hg.num_vertices}/{hg.num_edges}",
                hg.rank,
                direct.objective,
                optimum,
                direct.objective / optimum,
                direct.rounds,
                distributed.rounds,
            ]
        )
        checks.append(
            {
                "same": direct.assignment == distributed.assignment,
                "feasible": ilp.is_feasible(direct.assignment),
                "ratio_ok": direct.objective
                <= float(direct.certified_guarantee) * optimum + 1e-9,
                "rank_ok": hg.rank <= max(1, rank_bound),
                "degree_ok": hg.max_degree < max(2, degree_bound),
                "overhead": distributed.rounds >= direct.rounds,
            }
        )
    return {"rows": rows, "checks": checks}


def run_box_sweep() -> dict:
    """Growing M: reduction blowup and distributed round cost."""
    rows = []
    for max_bound in (1, 3, 7, 15):
        ilp = random_ilp(99, variables=3, rows=3, max_bound=max_bound)
        direct = solve_covering_ilp(ilp, EPSILON, method="direct")
        distributed = solve_covering_ilp(
            ilp, EPSILON, method="distributed"
        )
        hg = direct.reduction.hypergraph
        metrics = distributed.cover_result.metrics
        rows.append(
            [
                str(ilp.box_bound),
                direct.expansion.max_bits,
                f"{hg.num_vertices}/{hg.num_edges}",
                hg.rank,
                direct.rounds,
                distributed.rounds,
                metrics.fragmented_messages,
            ]
        )
    return {"rows": rows}


def test_ilp_covering(benchmark):
    data = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = render_table(
        [
            "seed",
            "vars x rows",
            "M",
            "H verts/edges",
            "f'",
            "objective",
            "optimum",
            "ratio",
            "direct rounds",
            "distributed rounds",
        ],
        data["rows"],
        title=f"E7 — covering ILPs end to end (eps={EPSILON})",
    )
    publish("ilp_covering", table)
    for check in data["checks"]:
        assert all(check.values()), check


def test_ilp_box_sweep(benchmark):
    data = benchmark.pedantic(run_box_sweep, rounds=1, iterations=1)
    table = render_table(
        [
            "M",
            "bits B",
            "H verts/edges",
            "f'",
            "direct rounds",
            "distributed rounds",
            "fragmented msgs",
        ],
        data["rows"],
        title="E7b — reduction blowup vs the box bound M (Claim 18)",
    )
    publish("ilp_box_sweep", table)
    ranks = [row[3] for row in data["rows"]]
    assert ranks == sorted(ranks)  # rank grows with log M


def test_benchmark_ilp_direct(benchmark):
    ilp = random_ilp(3, variables=4, rows=4, max_bound=7)
    benchmark(lambda: solve_covering_ilp(ilp, EPSILON, method="direct"))
