"""E15 — serving through chaos: zero lost requests, bounded tails.

The resilience acceptance gate.  A :class:`~repro.core.server.CoverServer`
with two workers serves a steady request stream while a deterministic
:class:`~repro.core.faults.FaultPlan` takes the pool apart mid-run:

* one worker is **SIGKILLed** mid-dispatch (twice — enough to trip the
  session's circuit breaker into degraded in-process mode);
* another worker is **hung** on a 20-second stall, which the
  :class:`~repro.core.supervisor.WorkerSupervisor` must cut short at
  its cost-model solve deadline with a targeted kill;
* after the breaker's cooldown, a probe dispatch must close it again
  (recovery), with the stream still flowing.

The gate asserts outcomes, not luck:

* **zero lost requests** — every request of every phase is answered
  ``ok``, bit-identical to a solo ``executor="fastpath"`` solve;
* **the recovery machinery actually ran** — summed per-response
  ``retries`` > 0, breaker ``trips`` >= 1 *and* ``recoveries`` >= 1,
  supervisor ``hung``/``kills`` >= 1;
* client-observed p50/p95/p99 latency lands in the published record
  (and the ``BENCH_3.json`` trend series), so the cost of surviving
  faults is visible across commits.

Unlike the throughput gates (E11-E13), every assertion here is a
correctness property of the recovery path and holds on single-core
boxes too, so nothing is floor-gated on ``os.cpu_count()``.
"""

from __future__ import annotations

import asyncio
import os
import time
from fractions import Fraction

from conftest import publish, publish_json

from repro.analysis.tables import render_table
from repro.core.faults import FaultPlan
from repro.core.params import AlgorithmConfig
from repro.core.server import CoverClient, CoverServer, _percentile
from repro.core.solver import solve_mwhvc
from repro.core.supervisor import SupervisorPolicy
from repro.hypergraph.generators import regular_hypergraph, uniform_weights

N = 42
RANK = 3
DEGREE = 8
EPSILON = Fraction(1, 100)
CLIENTS = 4
HEALTHY_REQUESTS = 8
CHAOS_REQUESTS = 12
RECOVERY_ATTEMPTS = 30
HANG_REQUESTS = 4
HANG_SECONDS = 20.0

POLICY = SupervisorPolicy(
    floor=1.0,
    tick=0.05,
    retry_budget=2,
    backoff_base=0.02,
    backoff_cap=0.2,
    breaker_threshold=2,
    breaker_window=30.0,
    breaker_cooldown=0.3,
)

def build_corpus(count):
    return [
        regular_hypergraph(
            N, RANK, DEGREE, seed=seed,
            weights=uniform_weights(N, 10_000, seed=seed + 9),
        )
        for seed in range(count)
    ]


def solo_reference(corpus, config):
    references = []
    for hypergraph in corpus:
        result = solve_mwhvc(hypergraph, config=config, executor="fastpath")
        data = result.as_dict()
        data.pop("lane", None)
        data.pop("worker", None)
        references.append(data)
    return references


async def drive_chaos(corpus, config):
    """The full four-phase run; returns the raw evidence.

    Phase 1 (healthy): warm pool, baseline stream.  Phase 2 (kills):
    two forced worker kills ride the next dispatches while requests
    keep flowing — two pool-break failures trip the breaker into
    degraded in-process mode.  Phase 3 (recovery): after the breaker's
    cooldown, keep submitting until a half-open probe closes it.
    Phase 4 (hang): a forced 20-second stall with the pool otherwise
    healthy — the supervisor's deadline must cut it short with a
    targeted kill and the shard must come back through retry.  (The
    hang runs *after* the kills on purpose: a pool break fails every
    inflight future at once, which would let a concurrent kill settle
    the hung shard before the supervisor's deadline ever fires.)
    """
    from repro.core.server import instance_payload

    plan = FaultPlan(seed=0)
    server = CoverServer(
        config=config, jobs=2, max_batch=4,
        fault_plan=plan, policy=POLICY,
    )
    host, port = await server.start()
    responses = []
    latencies = []
    try:
        clients = await asyncio.gather(
            *[CoverClient.connect(host, port) for _ in range(CLIENTS)]
        )
        try:
            cursor = 0

            async def send(position):
                message = {
                    "op": "solve",
                    "id": f"r{position}",
                    **instance_payload(corpus[position]),
                }
                started = time.perf_counter()
                response = await clients[position % CLIENTS].request(message)
                latencies.append(time.perf_counter() - started)
                responses.append((position, response))

            async def wave(count):
                nonlocal cursor
                first = cursor
                cursor += count
                await asyncio.gather(
                    *[send(position) for position in range(first, cursor)]
                )

            # Phase 1 — healthy baseline (also spawns the workers).
            await wave(HEALTHY_REQUESTS)

            # Phase 2 — two forced kills on the next dispatches:
            # enough pool-break failures to trip the breaker.
            plan.force_worker("kill")
            plan.force_worker("kill")
            await wave(CHAOS_REQUESTS)

            # Phase 3 — recovery: wait out the cooldown, then stream
            # singles until a half-open probe closes the breaker.
            await asyncio.sleep(POLICY.breaker_cooldown + 0.1)
            recovered = False
            for _ in range(RECOVERY_ATTEMPTS):
                await wave(1)
                stats = await clients[0].stats()
                breaker = stats["session"]["breaker"]
                if breaker["recoveries"] >= 1:
                    recovered = True
                    break
                await asyncio.sleep(0.1)

            # Phase 4 — a hang against a healthy pool; the supervisor
            # must cut it at its deadline and the retry must land.
            plan.force_worker("hang", HANG_SECONDS)
            await wave(HANG_REQUESTS)
            stats = await clients[0].stats()
        finally:
            for client in clients:
                await client.close()
    finally:
        await server.shutdown()
        session_snapshot = server.session.snapshot()
    return responses, latencies, stats, session_snapshot, plan, recovered


def test_chaos_serving_gate(benchmark):
    """Acceptance: kills + a hang mid-run lose nothing — every request
    answered bit-identically, retries > 0, breaker tripped and
    recovered, supervisor killed the hung worker — with the latency
    tail published to the trend series."""
    config = AlgorithmConfig(epsilon=EPSILON)
    corpus = build_corpus(
        HEALTHY_REQUESTS + CHAOS_REQUESTS + RECOVERY_ATTEMPTS
        + HANG_REQUESTS
    )
    references = solo_reference(corpus, config)

    responses, latencies, stats, snapshot, plan, recovered = (
        benchmark.pedantic(
            lambda: asyncio.run(drive_chaos(corpus, config)),
            rounds=1,
            iterations=1,
        )
    )

    # Zero lost requests: everything sent was answered, and answered ok.
    lost = [
        (position, response)
        for position, response in responses
        if not response.get("ok")
    ]
    assert not lost, f"requests lost or errored under chaos: {lost[:3]}"
    retries_total = sum(
        response.get("retries", 0) for _, response in responses
    )
    for position, response in responses:
        body = dict(response["result"])
        body.pop("lane", None)
        body.pop("worker", None)
        assert body == references[position], (
            f"response r{position} drifted from solo fastpath under chaos"
        )

    breaker = snapshot["breaker"]
    supervisor = snapshot["supervisor"]
    session_stats = snapshot["stats"]
    assert plan.fired.get("kill", 0) >= 2, dict(plan.fired)
    assert plan.fired.get("hang", 0) >= 1, dict(plan.fired)
    assert retries_total > 0, session_stats
    assert session_stats["retries"] >= 1, session_stats
    assert breaker["trips"] >= 1, breaker
    assert recovered and breaker["recoveries"] >= 1, breaker
    assert supervisor["hung"] >= 1, supervisor
    assert supervisor["kills"] >= 1, supervisor

    ordered = sorted(latencies)
    p50 = _percentile(ordered, 0.50) * 1e3
    p95 = _percentile(ordered, 0.95) * 1e3
    p99 = _percentile(ordered, 0.99) * 1e3
    cpus = os.cpu_count() or 1

    table = render_table(
        ["phase", "requests", "evidence"],
        [
            ["healthy", str(HEALTHY_REQUESTS), "pool warm, stream flowing"],
            [
                "kills",
                str(CHAOS_REQUESTS),
                (
                    f"killx{plan.fired.get('kill', 0)}, "
                    f"retries={session_stats['retries']}, "
                    f"degraded={session_stats['degraded']}"
                ),
            ],
            [
                "recovery",
                str(
                    len(responses) - HEALTHY_REQUESTS - CHAOS_REQUESTS
                    - HANG_REQUESTS
                ),
                (
                    f"trips={breaker['trips']}, "
                    f"recoveries={breaker['recoveries']}, "
                    f"state={breaker['state']}"
                ),
            ],
            [
                "hang",
                str(HANG_REQUESTS),
                (
                    f"hangx{plan.fired.get('hang', 0)}, "
                    f"supervisor hung={supervisor['hung']} "
                    f"kills={supervisor['kills']}"
                ),
            ],
        ],
        title=(
            f"E15 — {len(responses)} requests through kills + a hang "
            f"(jobs=2, {cpus} cpu(s)); 0 lost; latency p50/p95/p99 "
            f"{p50:.1f}/{p95:.1f}/{p99:.1f} ms"
        ),
    )
    publish("chaos_resilience", table)
    publish_json(
        "chaos_resilience",
        {
            "gate": "chaos_zero_lost_requests",
            "requests": len(responses),
            "lost": 0,
            "clients": CLIENTS,
            "n": N,
            "epsilon": str(EPSILON),
            "cpus": cpus,
            "faults_fired": dict(plan.fired),
            "retries_total": retries_total,
            "session_retries": session_stats["retries"],
            "session_exhausted": session_stats["exhausted"],
            "session_degraded": session_stats["degraded"],
            "transport_errors": session_stats["transport_errors"],
            "breaker_trips": breaker["trips"],
            "breaker_recoveries": breaker["recoveries"],
            "supervisor_hung": supervisor["hung"],
            "supervisor_kills": supervisor["kills"],
            "p50_ms": round(p50, 3),
            "p95_ms": round(p95, 3),
            "p99_ms": round(p99, 3),
            "bit_identical": True,
        },
    )
